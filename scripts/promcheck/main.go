// Command promcheck validates a Prometheus text-exposition (version 0.0.4)
// document and asserts properties of its samples — the checker behind the
// metrics-smoke and chaos-soak CI jobs.
//
// Validation (always on) rejects:
//   - sample lines that do not parse (name, label syntax, escapes, value);
//   - invalid metric or label names;
//   - a # TYPE line appearing after its family's samples, or twice;
//   - samples of one family interleaved with another family's;
//   - duplicate series (same name and label set twice);
//   - histograms whose buckets are not cumulative, lack an le="+Inf"
//     bucket, or whose _count disagrees with the +Inf bucket.
//
// Assertions (repeatable flags) run after validation:
//
//	-require NAME                the family NAME has at least one sample
//	-assert 'SEL OP N'           sum of samples matching SEL compared to N
//	-quantile 'SEL pQ OP N'      conservative quantile Q of the histogram
//	                             SEL (buckets merged across matching
//	                             series) compared to N
//
// SEL is a family name with an optional label subset: queue_depth{shard="0"}
// matches every series of queue_depth whose labels include shard="0".
// OP is one of == != >= <= > <.
//
// Usage:
//
//	promcheck -f metrics.txt -require service_ops_total \
//	  -assert 'service_ops_total == 20000' \
//	  -assert 'service_audit_violations_total == 0' \
//	  -quantile 'service_op_latency_ns p0.999 <= 4294967296'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ", ") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	var requires, asserts, quantiles repeated
	file := flag.String("f", "-", "exposition file to check (- = stdin)")
	flag.Var(&requires, "require", "family that must have at least one sample (repeatable)")
	flag.Var(&asserts, "assert", "'SELECTOR OP VALUE' over the sum of matching samples (repeatable)")
	flag.Var(&quantiles, "quantile", "'SELECTOR pQ OP VALUE' over a histogram quantile (repeatable)")
	flag.Parse()

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	doc, err := parse(in)
	if err != nil {
		fatal("invalid exposition: %v", err)
	}
	if err := doc.validate(); err != nil {
		fatal("invalid exposition: %v", err)
	}
	for _, name := range requires {
		if len(doc.samplesOf(name)) == 0 {
			fatal("require %s: no samples", name)
		}
	}
	for _, a := range asserts {
		if err := doc.assert(a); err != nil {
			fatal("assert %q: %v", a, err)
		}
	}
	for _, q := range quantiles {
		if err := doc.assertQuantile(q); err != nil {
			fatal("quantile %q: %v", q, err)
		}
	}
	fmt.Printf("promcheck: OK — %d series across %d families, %d assertions\n",
		len(doc.samples), len(doc.families), len(requires)+len(asserts)+len(quantiles))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// sample is one parsed series line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// family records the metadata seen for one metric family. For histograms,
// the family name is the base name (without _bucket/_sum/_count).
type family struct {
	typ     string
	hasHelp bool
}

type document struct {
	samples  []sample
	families map[string]*family
	// order tracks the first and last line each family's samples appeared
	// on, to detect interleaving.
	order []string
}

// base strips a histogram sample suffix down to its family name.
func base(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if s, ok := strings.CutSuffix(name, suf); ok {
			return s
		}
	}
	return name
}

func parse(r io.Reader) (*document, error) {
	doc := &document{families: map[string]*family{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := doc.meta(line, lineno); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(line, lineno)
		if err != nil {
			return nil, err
		}
		doc.samples = append(doc.samples, s)
		fam := base(s.name)
		if len(doc.order) == 0 || doc.order[len(doc.order)-1] != fam {
			doc.order = append(doc.order, fam)
		}
	}
	return doc, sc.Err()
}

// meta handles # HELP and # TYPE lines (other comments are ignored).
func (d *document) meta(line string, lineno int) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // plain comment
	}
	name := fields[2]
	if !nameRe.MatchString(name) {
		return fmt.Errorf("line %d: invalid metric name %q", lineno, name)
	}
	f := d.families[name]
	if f == nil {
		f = &family{}
		d.families[name] = f
	}
	if fields[1] == "HELP" {
		f.hasHelp = true
		return nil
	}
	if f.typ != "" {
		return fmt.Errorf("line %d: duplicate TYPE for %s", lineno, name)
	}
	if len(fields) < 4 {
		return fmt.Errorf("line %d: TYPE without a type", lineno)
	}
	switch fields[3] {
	case "counter", "gauge", "histogram", "summary", "untyped":
		f.typ = fields[3]
	default:
		return fmt.Errorf("line %d: unknown type %q", lineno, fields[3])
	}
	for _, s := range d.samples {
		if base(s.name) == name {
			return fmt.Errorf("line %d: TYPE %s after its samples", lineno, name)
		}
	}
	return nil
}

func parseSample(line string, lineno int) (sample, error) {
	s := sample{labels: map[string]string{}, line: lineno}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("line %d: no value: %q", lineno, line)
	}
	s.name = rest[:i]
	if !nameRe.MatchString(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", lineno, s.name)
	}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return s, fmt.Errorf("line %d: unterminated labels", lineno)
			}
			lname := rest[:eq]
			if !labelRe.MatchString(lname) {
				return s, fmt.Errorf("line %d: invalid label name %q", lineno, lname)
			}
			if _, dup := s.labels[lname]; dup {
				return s, fmt.Errorf("line %d: duplicate label %q", lineno, lname)
			}
			val, n, err := unquoteLabel(rest[eq+1:])
			if err != nil {
				return s, fmt.Errorf("line %d: label %s: %v", lineno, lname, err)
			}
			s.labels[lname] = val
			rest = rest[eq+1+n:]
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("line %d: want 'value [timestamp]', got %q", lineno, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("line %d: bad value %q", lineno, fields[0])
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("line %d: bad timestamp %q", lineno, fields[1])
		}
	}
	return s, nil
}

// unquoteLabel consumes a quoted label value with \\, \" and \n escapes,
// returning the value and the number of input bytes consumed.
func unquoteLabel(in string) (string, int, error) {
	if !strings.HasPrefix(in, `"`) {
		return "", 0, fmt.Errorf("value not quoted")
	}
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(in) {
				return "", 0, fmt.Errorf("trailing backslash")
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", in[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated quote")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validate runs the whole-document checks that need every sample parsed.
func (d *document) validate() error {
	// Families must be contiguous blocks.
	seen := map[string]bool{}
	for _, fam := range d.order {
		if seen[fam] {
			return fmt.Errorf("family %s interleaved with other families", fam)
		}
		seen[fam] = true
	}
	// No duplicate series.
	series := map[string]int{}
	for _, s := range d.samples {
		key := s.name + sig(s.labels)
		if prev, dup := series[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s (first at line %d)", s.line, key, prev)
		}
		series[key] = s.line
	}
	// Histogram integrity per series.
	for name, f := range d.families {
		if f.typ != "histogram" {
			continue
		}
		if err := d.validateHistogram(name); err != nil {
			return err
		}
	}
	return nil
}

// sig renders a label set canonically for dedup keys and error text.
func sig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, labels[n])
	}
	b.WriteByte('}')
	return b.String()
}

// validateHistogram checks each series of one histogram family: cumulative
// buckets, an +Inf bucket, and _count consistent with it.
func (d *document) validateHistogram(name string) error {
	type hist struct {
		buckets []sample
		count   float64
		hasCnt  bool
	}
	bySeries := map[string]*hist{}
	get := func(labels map[string]string) *hist {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := sig(rest)
		h := bySeries[key]
		if h == nil {
			h = &hist{}
			bySeries[key] = h
		}
		return h
	}
	for _, s := range d.samples {
		switch s.name {
		case name + "_bucket":
			if _, ok := s.labels["le"]; !ok {
				return fmt.Errorf("line %d: %s without le", s.line, s.name)
			}
			h := get(s.labels)
			h.buckets = append(h.buckets, s)
		case name + "_count":
			h := get(s.labels)
			h.count, h.hasCnt = s.value, true
		}
	}
	for key, h := range bySeries {
		if len(h.buckets) == 0 {
			return fmt.Errorf("histogram %s%s has no buckets", name, key)
		}
		sort.Slice(h.buckets, func(i, j int) bool {
			a, _ := parseValue(h.buckets[i].labels["le"])
			b, _ := parseValue(h.buckets[j].labels["le"])
			return a < b
		})
		prev := math.Inf(-1)
		prevCount := 0.0
		for _, b := range h.buckets {
			le, err := parseValue(b.labels["le"])
			if err != nil {
				return fmt.Errorf("line %d: bad le %q", b.line, b.labels["le"])
			}
			if le == prev {
				return fmt.Errorf("line %d: duplicate le %q in %s%s", b.line, b.labels["le"], name, key)
			}
			if b.value < prevCount {
				return fmt.Errorf("line %d: %s%s buckets not cumulative", b.line, name, key)
			}
			prev, prevCount = le, b.value
		}
		last := h.buckets[len(h.buckets)-1]
		if !math.IsInf(mustValue(last.labels["le"]), 1) {
			return fmt.Errorf("histogram %s%s lacks an le=\"+Inf\" bucket", name, key)
		}
		if h.hasCnt && h.count != last.value {
			return fmt.Errorf("histogram %s%s: _count %v != +Inf bucket %v", name, key, h.count, last.value)
		}
	}
	return nil
}

func mustValue(s string) float64 { v, _ := parseValue(s); return v }

// selector is a family name plus a label subset to match.
type selector struct {
	name   string
	labels map[string]string
}

func parseSelector(s string) (selector, error) {
	sel := selector{labels: map[string]string{}}
	i := strings.Index(s, "{")
	if i < 0 {
		sel.name = s
	} else {
		sel.name = s[:i]
		rest := s[i+1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if strings.HasPrefix(rest, "}") {
				if strings.TrimSpace(rest[1:]) != "" {
					return sel, fmt.Errorf("trailing %q", rest[1:])
				}
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return sel, fmt.Errorf("unterminated selector")
			}
			val, n, err := unquoteLabel(rest[eq+1:])
			if err != nil {
				return sel, err
			}
			sel.labels[rest[:eq]] = val
			rest = rest[eq+1+n:]
		}
	}
	if !nameRe.MatchString(sel.name) {
		return sel, fmt.Errorf("invalid name %q", sel.name)
	}
	return sel, nil
}

func (sel selector) matches(s sample) bool {
	if s.name != sel.name {
		return false
	}
	for k, v := range sel.labels {
		if s.labels[k] != v {
			return false
		}
	}
	return true
}

func (d *document) samplesOf(name string) []sample {
	var out []sample
	for _, s := range d.samples {
		if s.name == name || base(s.name) == name {
			out = append(out, s)
		}
	}
	return out
}

func compare(got float64, op string, want float64) error {
	ok := false
	switch op {
	case "==":
		ok = got == want
	case "!=":
		ok = got != want
	case ">=":
		ok = got >= want
	case "<=":
		ok = got <= want
	case ">":
		ok = got > want
	case "<":
		ok = got < want
	default:
		return fmt.Errorf("unknown operator %q", op)
	}
	if !ok {
		return fmt.Errorf("got %v, want %s %v", got, op, want)
	}
	return nil
}

// assert evaluates 'SELECTOR OP VALUE' over the sum of matching samples.
func (d *document) assert(expr string) error {
	fields := strings.Fields(expr)
	if len(fields) != 3 {
		return fmt.Errorf("want 'SELECTOR OP VALUE'")
	}
	sel, err := parseSelector(fields[0])
	if err != nil {
		return err
	}
	want, err := parseValue(fields[2])
	if err != nil {
		return fmt.Errorf("bad value %q", fields[2])
	}
	sum, n := 0.0, 0
	for _, s := range d.samples {
		if sel.matches(s) {
			sum += s.value
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("no samples match")
	}
	return compare(sum, fields[1], want)
}

// assertQuantile evaluates 'SELECTOR pQ OP VALUE' over a histogram's
// buckets, merged across every series the selector matches. The quantile is
// conservative — the upper bound of the bucket where the cumulative count
// crosses the rank — mirroring the exporter's own Quantile.
func (d *document) assertQuantile(expr string) error {
	fields := strings.Fields(expr)
	if len(fields) != 4 || !strings.HasPrefix(fields[1], "p") {
		return fmt.Errorf("want 'SELECTOR pQ OP VALUE'")
	}
	q, err := strconv.ParseFloat(fields[1][1:], 64)
	if err != nil || q <= 0 || q > 1 {
		return fmt.Errorf("bad quantile %q", fields[1])
	}
	sel, err := parseSelector(fields[0])
	if err != nil {
		return err
	}
	want, err := parseValue(fields[3])
	if err != nil {
		return fmt.Errorf("bad value %q", fields[3])
	}
	// Merge bucket counts by le across matching series.
	merged := map[float64]float64{}
	for _, s := range d.samples {
		if s.name != sel.name+"_bucket" {
			continue
		}
		probe := s
		probe.name = sel.name
		if !sel.matches(probe) {
			continue
		}
		le, err := parseValue(s.labels["le"])
		if err != nil {
			return fmt.Errorf("bad le %q", s.labels["le"])
		}
		merged[le] += s.value
	}
	if len(merged) == 0 {
		return fmt.Errorf("no histogram buckets match")
	}
	les := make([]float64, 0, len(merged))
	for le := range merged {
		les = append(les, le)
	}
	sort.Float64s(les)
	total := merged[les[len(les)-1]]
	if total == 0 {
		return fmt.Errorf("histogram is empty")
	}
	rank := math.Ceil(q * total)
	got := les[len(les)-1]
	for _, le := range les {
		if merged[le] >= rank {
			got = le
			break
		}
	}
	if math.IsInf(got, 1) && len(les) > 1 {
		// Everything above the largest finite bound: report that bound,
		// like the exporter does.
		got = les[len(les)-2]
	}
	return compare(got, fields[2], want)
}
