package main

import (
	"strings"
	"testing"
)

const good = `# HELP ops_total Completed operations.
# TYPE ops_total counter
ops_total{kind="get"} 12
ops_total{kind="put"} 8
# HELP temp Current temperature.
# TYPE temp gauge
temp{site="a b",note="q\"uo\\te\nnl"} -3.5
# HELP lat Latency.
# TYPE lat histogram
lat_bucket{le="10"} 3
lat_bucket{le="100"} 7
lat_bucket{le="+Inf"} 9
lat_sum 1234
lat_count 9
`

func mustParse(t *testing.T, in string) *document {
	t.Helper()
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := doc.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return doc
}

func TestParseAndValidateGood(t *testing.T) {
	doc := mustParse(t, good)
	if len(doc.samples) != 8 {
		t.Fatalf("samples = %d, want 8", len(doc.samples))
	}
	if got := doc.samples[2].labels["note"]; got != "q\"uo\\te\nnl" {
		t.Fatalf("unescaped label = %q", got)
	}
	if doc.families["lat"].typ != "histogram" {
		t.Fatalf("lat type = %q", doc.families["lat"].typ)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":                 `0ops 1` + "\n",
		"bad label name":           `ops{0k="v"} 1` + "\n",
		"unquoted label":           `ops{k=v} 1` + "\n",
		"bad escape":               `ops{k="\q"} 1` + "\n",
		"no value":                 `ops_total` + "\n",
		"bad value":                `ops zebra` + "\n",
		"duplicate series":         "ops{k=\"a\"} 1\nops{k=\"a\"} 2\n",
		"interleaved families":     "a 1\nb 2\na 3\n",
		"type after samples":       "ops 1\n# TYPE ops counter\n",
		"duplicate type":           "# TYPE ops counter\n# TYPE ops gauge\nops 1\n",
		"unknown type":             "# TYPE ops zcounter\nops 1\n",
		"non-cumulative histogram": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		"histogram without inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n",
		"count disagrees":          "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n",
		"bucket without le":        "# TYPE h histogram\nh_bucket{x=\"1\"} 5\n",
	}
	for name, in := range cases {
		doc, err := parse(strings.NewReader(in))
		if err == nil {
			err = doc.validate()
		}
		if err == nil {
			t.Errorf("%s: accepted:\n%s", name, in)
		}
	}
}

func TestAssert(t *testing.T) {
	doc := mustParse(t, good)
	for _, expr := range []string{
		"ops_total == 20",
		`ops_total{kind="get"} == 12`,
		"ops_total >= 20",
		"ops_total <= 20",
		"ops_total != 19",
		"temp < 0",
		"lat_count > 8",
	} {
		if err := doc.assert(expr); err != nil {
			t.Errorf("assert %q: %v", expr, err)
		}
	}
	for _, expr := range []string{
		"ops_total == 19",
		`ops_total{kind="cas"} == 0`, // no matching samples is a failure
		"ghost == 0",
		"ops_total",
		"ops_total ~= 20",
	} {
		if err := doc.assert(expr); err == nil {
			t.Errorf("assert %q: passed, want failure", expr)
		}
	}
}

func TestAssertQuantile(t *testing.T) {
	doc := mustParse(t, good)
	// 9 observations: 3 ≤10, 7 ≤100. p0.5 rank 5 → bucket 100.
	for _, expr := range []string{
		"lat p0.5 == 100",
		"lat p0.1 == 10",
		"lat p0.999 == 100", // +Inf bucket reports the largest finite bound
		"lat p0.5 <= 100",
	} {
		if err := doc.assertQuantile(expr); err != nil {
			t.Errorf("quantile %q: %v", expr, err)
		}
	}
	for _, expr := range []string{
		"lat p0.5 == 10",
		"lat p0.5 <= 50",
		"ghost p0.5 == 1",
		"lat q0.5 == 100",
		"lat p1.5 == 100",
	} {
		if err := doc.assertQuantile(expr); err == nil {
			t.Errorf("quantile %q: passed, want failure", expr)
		}
	}
}

func TestQuantileMergesSeries(t *testing.T) {
	doc := mustParse(t, `# TYPE lat histogram
lat_bucket{shard="0",le="10"} 0
lat_bucket{shard="0",le="+Inf"} 4
lat_bucket{shard="1",le="10"} 6
lat_bucket{shard="1",le="+Inf"} 6
`)
	// Merged: 6 ≤10, 10 total. p0.5 rank 5 → bucket 10.
	if err := doc.assertQuantile("lat p0.5 == 10"); err != nil {
		t.Errorf("merged quantile: %v", err)
	}
	// Restricted to shard 1 every observation is ≤10, so any quantile is 10.
	if err := doc.assertQuantile(`lat{shard="1"} p0.9 == 10`); err != nil {
		t.Errorf("selected quantile: %v", err)
	}
	// Shard 0 alone has everything in +Inf: rank ceil(0.9*4)=4 lands in the
	// +Inf bucket, which reports the largest finite bound.
	if err := doc.assertQuantile(`lat{shard="0"} p0.9 == 10`); err != nil {
		t.Errorf("inf-bucket quantile: %v", err)
	}
}

func TestSelectorSubsetMatch(t *testing.T) {
	doc := mustParse(t, `q{shard="0",slot="1"} 5
`)
	if err := doc.assert(`q{shard="0"} == 5`); err != nil {
		t.Errorf("subset selector: %v", err)
	}
	if err := doc.assert(`q{shard="1"} == 5`); err == nil {
		t.Error("wrong label value matched")
	}
}
