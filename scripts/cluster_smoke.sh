#!/usr/bin/env bash
# cluster_smoke.sh — free-mode failover smoke of the replicated cluster.
#
# Boots a 3-node cluster (every node frontend+store, 2 shards, RPW1
# replication between peers), pushes 50k loadgen ops through a surviving
# front end's wire listener, and SIGKILLs the shard-0 owner mid-run. The
# smoke passes only if:
#
#   - loadgen exits 0: zero request errors and zero audited linearizability
#     violations across the failover (idempotent retries are on, so the
#     election may slow requests but must never fail them);
#   - a survivor actually won an election (a vacuous smoke fails): the
#     final cluster report of the survivors counts >= 1 failover;
#   - the survivors leaked no goroutines (post-load count near the warm
#     baseline);
#   - both survivors drain all listeners and exit 0 on SIGTERM (exit 3 =
#     final audit violation) and print the per-listener drain report.
#
# A second, batched pass then boots a fresh cluster with the replication
# pipeline opened up (-max-inflight-entries 32 -batch-window 200us) and
# drives 64-op wire batches through it: the measured ops/s must clear a
# floor comfortably above the old stop-and-wait path's ~2568 ops/s.
#
# Usage:   scripts/cluster_smoke.sh
# Env:     CLUSTER_OPS=50000  CLUSTER_BASE_PORT=7200  CLUSTER_BATCH_FLOOR=4000
set -uo pipefail

cd "$(dirname "$0")/.."

OPS="${CLUSTER_OPS:-50000}"
BASE="${CLUSTER_BASE_PORT:-7200}"
TMP="$(mktemp -d)"

pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/served" ./cmd/served
go build -o "$TMP/loadgen" ./cmd/loadgen

# Port plan: peers (replication) at BASE+i, HTTP at BASE+10+i, wire at
# BASE+20+i.
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE + 1)),127.0.0.1:$((BASE + 2))"
for i in 0 1 2; do
  "$TMP/served" -node "$i" -peers "$PEERS" -roles frontend,store -shards 2 \
    -addr "127.0.0.1:$((BASE + 10 + i))" -wire "127.0.0.1:$((BASE + 20 + i))" \
    >"$TMP/served-$i.log" 2>&1 &
  pids[i]=$!
done

for i in 0 1 2; do
  up=0
  for _ in $(seq 1 50); do
    if curl -fs "http://127.0.0.1:$((BASE + 10 + i))/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
  done
  [ "$up" = 1 ] || { echo "cluster-smoke: node $i never came up" >&2; cat "$TMP/served-$i.log" >&2; exit 1; }
done

goroutines() { curl -fs "http://127.0.0.1:$((BASE + 10 + $1))/stats" | sed -n 's/.*"goroutines":\([0-9]*\).*/\1/p'; }

# Warm the survivors (peer links, connection pools, shard logs) before
# taking the leak baselines; node 0 is about to die, so only 1 and 2 count.
"$TMP/loadgen" -proto wire -addr "127.0.0.1:$((BASE + 21))" -conns 2 -workers 4 -ops 2000 >/dev/null
base_g1="$(goroutines 1)"
base_g2="$(goroutines 2)"
echo "cluster-smoke: baseline goroutines node1=$base_g1 node2=$base_g2; pushing $OPS ops"

# The main load goes through node 1's wire listener — a front end that
# survives the kill. Routing to shard 0 still crosses to node 0 (its owner
# under the rotated preference) until the failover.
"$TMP/loadgen" -proto wire -addr "127.0.0.1:$((BASE + 21))" -conns 4 -workers 8 -ops "$OPS" \
  >"$TMP/loadgen.log" 2>&1 &
lg=$!

sleep 1.2
echo "cluster-smoke: SIGKILL node 0 (shard-0 owner) mid-run"
kill -9 "${pids[0]}"
wait "${pids[0]}" 2>/dev/null

if ! wait "$lg"; then
  echo "cluster-smoke: FAIL — loadgen reported errors or audit violations" >&2
  cat "$TMP/loadgen.log" >&2
  exit 1
fi
tail -n 3 "$TMP/loadgen.log"

sleep 1 # let post-failover retransmissions and closed peer links settle
end_g1="$(goroutines 1)"
end_g2="$(goroutines 2)"
echo "cluster-smoke: after load goroutines node1=$end_g1 node2=$end_g2"
if [ "$end_g1" -gt $((base_g1 + 20)) ] || [ "$end_g2" -gt $((base_g2 + 20)) ]; then
  echo "cluster-smoke: FAIL — goroutine leak: node1 $base_g1 -> $end_g1, node2 $base_g2 -> $end_g2" >&2
  exit 1
fi

kill -TERM "${pids[1]}" "${pids[2]}"
wait "${pids[1]}"; rc1=$?
wait "${pids[2]}"; rc2=$?
pids=()
if [ "$rc1" -ne 0 ] || [ "$rc2" -ne 0 ]; then
  echo "cluster-smoke: FAIL — survivor exit codes node1=$rc1 node2=$rc2 (3 = audit violation)" >&2
  tail -n 20 "$TMP/served-1.log" "$TMP/served-2.log" >&2
  exit 1
fi

# The survivors' final reports: the drain must be per-listener and the
# cluster counters must show a real failover happened somewhere.
failovers=0
for i in 1 2; do
  if ! grep -q 'served: drain: http=' "$TMP/served-$i.log"; then
    echo "cluster-smoke: FAIL — node $i printed no per-listener drain report" >&2
    tail -n 20 "$TMP/served-$i.log" >&2
    exit 1
  fi
  f="$(sed -n 's/.*served: cluster: \([0-9]*\) failovers.*/\1/p' "$TMP/served-$i.log" | head -n 1)"
  failovers=$((failovers + ${f:-0}))
  grep -E 'served: (cluster|drain):' "$TMP/served-$i.log" | sed "s/^/cluster-smoke: node $i: /"
done
if [ "$failovers" -eq 0 ]; then
  echo "cluster-smoke: FAIL — no survivor won an election (vacuous smoke)" >&2
  exit 1
fi

echo "cluster-smoke: OK — $failovers failover(s) absorbed, audit clean, no leaks"

# --- Batched pass: pipelined replication throughput floor -------------------
FLOOR="${CLUSTER_BATCH_FLOOR:-4000}"
BBASE=$((BASE + 30))
BPEERS="127.0.0.1:$BBASE,127.0.0.1:$((BBASE + 1)),127.0.0.1:$((BBASE + 2))"
echo "cluster-smoke: batched pass — pipelined cluster, 64-op batches, floor $FLOOR ops/s"
for i in 0 1 2; do
  "$TMP/served" -node "$i" -peers "$BPEERS" -roles frontend,store -shards 2 \
    -max-inflight-entries 32 -batch-window 200us \
    -addr "127.0.0.1:$((BBASE + 10 + i))" -wire "127.0.0.1:$((BBASE + 20 + i))" \
    >"$TMP/batched-$i.log" 2>&1 &
  pids[i]=$!
done
for i in 0 1 2; do
  up=0
  for _ in $(seq 1 50); do
    if curl -fs "http://127.0.0.1:$((BBASE + 10 + i))/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.2
  done
  [ "$up" = 1 ] || { echo "cluster-smoke: batched node $i never came up" >&2; cat "$TMP/batched-$i.log" >&2; exit 1; }
done

if ! "$TMP/loadgen" -proto wire -addr "127.0.0.1:$((BBASE + 20))" -conns 4 -workers 8 \
    -batch 64 -ops "$OPS" >"$TMP/batched-load.log" 2>&1; then
  echo "cluster-smoke: FAIL — batched loadgen reported errors or audit violations" >&2
  cat "$TMP/batched-load.log" >&2
  exit 1
fi
tail -n 3 "$TMP/batched-load.log"

rate="$(awk '/ops in .* = .* ops\/s/ { for (i = 1; i < NF; i++) if ($(i+1) == "ops/s") { printf "%d", $i; exit } }' "$TMP/batched-load.log")"
if [ -z "$rate" ]; then
  echo "cluster-smoke: FAIL — could not parse ops/s from batched loadgen output" >&2
  cat "$TMP/batched-load.log" >&2
  exit 1
fi
if [ "$rate" -lt "$FLOOR" ]; then
  echo "cluster-smoke: FAIL — batched throughput $rate ops/s below floor $FLOOR" >&2
  exit 1
fi

kill -TERM "${pids[0]}" "${pids[1]}" "${pids[2]}"
for i in 0 1 2; do
  if ! wait "${pids[i]}"; then
    echo "cluster-smoke: FAIL — batched node $i exit code $? (3 = audit violation)" >&2
    tail -n 20 "$TMP/batched-$i.log" >&2
    exit 1
  fi
done
pids=()

echo "cluster-smoke: OK — batched pass sustained $rate ops/s (floor $FLOOR)"
