#!/usr/bin/env bash
# metrics_smoke.sh — end-to-end smoke of the observability surface.
#
# Starts cmd/served, drives 20k ops of mixed traffic through cmd/loadgen,
# exercises a live /config reload mid-run, scrapes /metrics, and reconciles
# the exposition against independent ledgers with scripts/promcheck:
#
#   - the exposition is well-formed (names, escapes, TYPE placement,
#     cumulative histogram buckets, _count == +Inf bucket);
#   - sum(service_ops_total) equals the ops the loadgen actually completed
#     (client-side ledger from -summary) AND the server's own /stats total
#     (two independent accountings of the same traffic);
#   - supervision restart/condemned counters equal the /stats supervision
#     report;
#   - audit windows were actually checked, with zero violations;
#   - service_inflight drained back to 0 after the run.
#
# Usage:   scripts/metrics_smoke.sh
# Env:     SMOKE_OPS=20000  SMOKE_ADDR=127.0.0.1:7079
set -euo pipefail

cd "$(dirname "$0")/.."

OPS="${SMOKE_OPS:-20000}"
ADDR="${SMOKE_ADDR:-127.0.0.1:7079}"
URL="http://$ADDR"
TMP="$(mktemp -d)"

served_pid=""
cleanup() {
  [ -n "$served_pid" ] && kill "$served_pid" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/served" ./cmd/served
go build -o "$TMP/loadgen" ./cmd/loadgen
go build -o "$TMP/promcheck" ./scripts/promcheck

"$TMP/served" -addr "$ADDR" -shards 4 -workers-per-shard 2 -supervise &
served_pid=$!

up=0
for _ in $(seq 1 50); do
  if curl -fs "$URL/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
[ "$up" = 1 ] || { echo "metrics-smoke: served never came up" >&2; exit 1; }

stat() { curl -fs "$URL/stats" | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p" | head -n 1; }

# First half of the load, then a live reload, then the second half: the
# counters scraped at the end span both tunable regimes.
"$TMP/loadgen" -addr "$URL" -workers 8 -ops $((OPS / 2)) \
  -summary "$TMP/summary1.json"

curl -fs -X POST "$URL/config" -d '{"max_batch": 16, "audit_sample": 0.5}' >/dev/null
got="$(curl -fs "$URL/config")"
case "$got" in
  *'"max_batch":16'*) ;;
  *) echo "metrics-smoke: reload not visible on GET /config: $got" >&2; exit 1 ;;
esac
if curl -fs -X POST "$URL/config" -d '{"max_batch": 0}' >/dev/null 2>&1; then
  echo "metrics-smoke: invalid reload was accepted" >&2
  exit 1
fi

"$TMP/loadgen" -addr "$URL" -workers 8 -ops $((OPS - OPS / 2)) \
  -summary "$TMP/summary2.json"

issued() { sed -n 's/.*"issued": \([0-9]*\).*/\1/p' "$1"; }
completed=$(( $(issued "$TMP/summary1.json") + $(issued "$TMP/summary2.json") ))
server_ops="$(stat total_ops)"
restarts="$(stat restarts)"
condemned="$(stat condemned)"
windows="$(stat windows_checked)"

curl -fs "$URL/metrics" >"$TMP/metrics.txt"

"$TMP/promcheck" -f "$TMP/metrics.txt" \
  -require service_ops_total \
  -require service_op_latency_ns \
  -require service_batches_total \
  -require service_batch_occupancy \
  -require service_queue_depth \
  -require service_committed \
  -require service_audit_windows_total \
  -require service_audit_sampled_total \
  -assert "service_ops_total == $completed" \
  -assert "service_ops_total == $server_ops" \
  -assert "service_op_latency_ns_count == $completed" \
  -assert "service_supervision_restarts_total == ${restarts:-0}" \
  -assert "service_supervision_condemned_total == ${condemned:-0}" \
  -assert "service_audit_windows_total >= 1" \
  -assert "service_audit_windows_total >= ${windows:-1}" \
  -assert "service_audit_violations_total == 0" \
  -assert "service_inflight == 0"

kill -TERM "$served_pid"
wait "$served_pid"
served_pid=""
echo "metrics-smoke: OK — $completed client ops reconciled against /metrics and /stats"
