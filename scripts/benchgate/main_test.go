package main

import (
	"regexp"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func baselineOf(lines ...benchLine) map[string]benchLine {
	m := map[string]benchLine{}
	for _, b := range lines {
		m[normalize(b.Name)] = b
	}
	return m
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := baselineOf(
		benchLine{Name: "BenchmarkFoo-8", NsPerOp: fp(100), AllocsPer: fp(2)},
	)
	g := compare([]result{{name: "BenchmarkFoo", ns: 350, allocs: 3}}, base, 4, 2, nil)
	if !g.ok() || g.compared != 1 {
		t.Fatalf("within-tolerance run failed the gate: %+v", g)
	}
}

func TestCompareDetectsRegressions(t *testing.T) {
	base := baselineOf(
		benchLine{Name: "BenchmarkFoo", NsPerOp: fp(100), AllocsPer: fp(2)},
	)
	g := compare([]result{{name: "BenchmarkFoo", ns: 500, allocs: 5}}, base, 4, 2, nil)
	if len(g.regressions) != 2 {
		t.Fatalf("want ns and allocs regressions, got %v", g.regressions)
	}
	if g.ok() {
		t.Fatal("regressed run passed the gate")
	}
}

func TestCompareNewBenchmarkIsInformational(t *testing.T) {
	g := compare([]result{{name: "BenchmarkNew", ns: 1, allocs: 0}}, baselineOf(), 4, 2, nil)
	if !g.ok() || len(g.skipped) != 1 || g.skipped[0] != "BenchmarkNew" {
		t.Fatalf("new benchmark handled wrong: %+v", g)
	}
}

// TestCompareMissingBaselineFamilyFails is the gate-hardening contract: a
// benchmark family present in the snapshot but absent from the current run
// must fail the gate, not silently skip.
func TestCompareMissingBaselineFamilyFails(t *testing.T) {
	base := baselineOf(
		benchLine{Name: "BenchmarkKept", NsPerOp: fp(100)},
		benchLine{Name: "BenchmarkGone/sub=1-8", NsPerOp: fp(100)},
		benchLine{Name: "BenchmarkGone/sub=2-8", NsPerOp: fp(100)},
	)
	g := compare([]result{{name: "BenchmarkKept", ns: 100, allocs: -1}}, base, 4, 2, nil)
	if g.ok() {
		t.Fatal("missing baseline family passed the gate")
	}
	if len(g.missing) != 2 {
		t.Fatalf("missing = %v, want the two BenchmarkGone entries", g.missing)
	}
	for _, m := range g.missing {
		if !strings.HasPrefix(m, "BenchmarkGone/") {
			t.Fatalf("unexpected missing entry %q", m)
		}
	}
}

func TestCompareMissingOKExemption(t *testing.T) {
	base := baselineOf(
		benchLine{Name: "BenchmarkKept", NsPerOp: fp(100)},
		benchLine{Name: "BenchmarkGone", NsPerOp: fp(100)},
	)
	g := compare([]result{{name: "BenchmarkKept", ns: 100, allocs: -1}},
		base, 4, 2, regexp.MustCompile(`^BenchmarkGone$`))
	if !g.ok() {
		t.Fatalf("exempted missing benchmark failed the gate: %+v", g)
	}
}

func TestParseResults(t *testing.T) {
	out := `goos: linux
BenchmarkStepSolo/n=1-8         	 5000000	       3.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweep/workers=4-8      	     100	    958323 ns/op	     10435 runs/s	  185467 B/op	    5174 allocs/op
PASS
`
	results := parseResults(out)
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	if results[0].name != "BenchmarkStepSolo/n=1" || results[0].ns != 3.1 || results[0].allocs != 0 {
		t.Fatalf("result 0 wrong: %+v", results[0])
	}
	if results[1].name != "BenchmarkSweep/workers=4" || results[1].allocs != 5174 {
		t.Fatalf("result 1 wrong: %+v", results[1])
	}
}

func TestNormalizeStripsCPUSuffix(t *testing.T) {
	if got := normalize("BenchmarkFoo/n=4-16"); got != "BenchmarkFoo/n=4" {
		t.Fatalf("normalize: %q", got)
	}
	if got := normalize("BenchmarkFoo"); got != "BenchmarkFoo" {
		t.Fatalf("normalize without suffix: %q", got)
	}
}
