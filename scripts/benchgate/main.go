// Command benchgate is the CI bench-regression gate: it runs the smoke
// benchmarks and compares ns/op and allocs/op against the most recent
// BENCH_<n>.json snapshot at the repo root (written by scripts/bench.sh),
// failing when a benchmark regresses past the tolerance factors.
//
// Usage (from the repo root):
//
//	go run ./scripts/benchgate [-benchtime 10x] [-step-benchtime 100000x]
//	    [-ns-tol 4] [-alloc-tol 2] [-bench regex] [-baseline BENCH_3.json]
//
// Four iteration regimes run: the scheduler-step and memory-primitive
// micro-benchmarks with a high iteration count (-step-benchtime; they cost
// nanoseconds per iteration, so a short run would measure setup instead of
// the hot path), the µs-scale serving-tier and wire-transport benchmarks
// (-serve-benchtime), the cluster replication throughput benchmarks
// (-repl-benchtime; they amortize a batch window across iterations, so a
// 10-iteration run would measure the window instead of the pipeline), and
// the ms-scale benchmarks (root + explorer + sim + cluster failover) with
// a short count (-benchtime).
//
// Tolerances are generous multipliers, not noise gates: ns/op varies across
// machines (the snapshot may come from different hardware than CI), so the
// default ns tolerance is 4x and the allocs tolerance — which is machine
// independent — is 2x. Benchmarks present only in the current run are
// reported but never fail the gate, so adding a benchmark does not require
// regenerating the snapshot first. Benchmarks present only in the
// *baseline*, however, fail the gate loudly: a benchmark family silently
// disappearing from the run (renamed, deleted, or filtered out) would
// otherwise turn the gate into a no-op for exactly the code it was
// guarding. Use -missing-ok to exempt names when intentionally narrowing a
// local run (e.g. with -bench).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Date       string      `json:"date"`
	Commit     string      `json:"commit"`
	Go         string      `json:"go"`
	Benchmarks []benchLine `json:"benchmarks"`
}

type benchLine struct {
	Name      string   `json:"name"`
	NsPerOp   *float64 `json:"ns_per_op"`
	AllocsPer *float64 `json:"allocs_per_op"`
}

// cpuSuffix strips the trailing "-<GOMAXPROCS>" that `go test -bench`
// appends on multi-CPU machines, so names compare across machines (the
// snapshot format stores names without it when generated on one CPU).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string { return cpuSuffix.ReplaceAllString(name, "") }

// benchOut matches one result line of `go test -bench -benchmem` output.
var benchRe = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
var allocsRe = regexp.MustCompile(`([0-9.]+) allocs/op`)

func latestSnapshot(root string) (string, error) {
	entries, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(e), "BENCH_"), ".json")
		n, err := strconv.Atoi(base)
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, best = n, e
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json snapshot found in %s", root)
	}
	return best, nil
}

// result is one parsed benchmark line from the current run.
type result struct {
	name   string
	ns     float64
	allocs float64
}

// gateOutcome is the comparison verdict: regressions and missing baseline
// benchmarks fail the gate; skipped (new) benchmarks are informational.
type gateOutcome struct {
	regressions []string
	skipped     []string
	missing     []string
	compared    int
}

func (g gateOutcome) ok() bool { return len(g.regressions) == 0 && len(g.missing) == 0 }

// compare checks every current result against the baseline (regressions)
// and every baseline benchmark against the current results (missing). Names
// on both sides are already normalized.
func compare(results []result, baseByName map[string]benchLine, nsTol, allocTol float64, missingOK *regexp.Regexp) gateOutcome {
	var g gateOutcome
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.name] = true
		b, ok := baseByName[r.name]
		if !ok {
			g.skipped = append(g.skipped, r.name)
			continue
		}
		g.compared++
		if b.NsPerOp != nil && *b.NsPerOp > 0 && r.ns > *b.NsPerOp*nsTol {
			g.regressions = append(g.regressions, fmt.Sprintf(
				"%s: ns/op %.1f > %.1f (baseline %.1f × tol %.1f)",
				r.name, r.ns, *b.NsPerOp*nsTol, *b.NsPerOp, nsTol))
		}
		if b.AllocsPer != nil && r.allocs >= 0 && r.allocs > *b.AllocsPer*allocTol {
			g.regressions = append(g.regressions, fmt.Sprintf(
				"%s: allocs/op %.0f > %.0f (baseline %.0f × tol %.1f)",
				r.name, r.allocs, *b.AllocsPer*allocTol, *b.AllocsPer, allocTol))
		}
	}
	for name := range baseByName {
		if !seen[name] && (missingOK == nil || !missingOK.MatchString(name)) {
			g.missing = append(g.missing, name)
		}
	}
	sort.Strings(g.skipped)
	sort.Strings(g.missing)
	sort.Strings(g.regressions)
	return g
}

// parseResults extracts benchmark result lines from go test -bench output,
// with names normalized.
func parseResults(out string) []result {
	var results []result
	for _, line := range strings.Split(out, "\n") {
		m := benchRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		allocs := -1.0
		if am := allocsRe.FindStringSubmatch(m[4]); am != nil {
			allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		results = append(results, result{name: normalize(m[1]), ns: ns, allocs: allocs})
	}
	return results
}

func main() {
	benchtime := flag.String("benchtime", "10x", "benchtime for the ms-scale suites (root, explorer, sim, cluster failover)")
	stepBenchtime := flag.String("step-benchtime", "100000x", "benchtime for the scheduler-step and memory-primitive micro-benchmarks")
	serveBenchtime := flag.String("serve-benchtime", "20000x", "benchtime for the µs-scale serving-tier benchmarks")
	replBenchtime := flag.String("repl-benchtime", "2000x", "benchtime for the cluster replication throughput benchmarks")
	nsTol := flag.Float64("ns-tol", 4, "fail when ns/op exceeds baseline by this factor")
	allocTol := flag.Float64("alloc-tol", 2, "fail when allocs/op exceeds baseline by this factor")
	benchPat := flag.String("bench", ".", "benchmark regex passed to go test")
	baselinePath := flag.String("baseline", "", "snapshot to compare against (default: latest BENCH_<n>.json)")
	missingOKPat := flag.String("missing-ok", "", "regex of baseline benchmarks allowed to be absent from this run")
	flag.Parse()

	var missingOK *regexp.Regexp
	if *missingOKPat != "" {
		var err error
		if missingOK, err = regexp.Compile(*missingOKPat); err != nil {
			fatal(fmt.Errorf("-missing-ok: %v", err))
		}
	}

	// The cluster package splits across two suites: the failover benchmarks
	// are ms-scale (a real election each iteration), but the replication
	// throughput benchmarks amortize a batch window across iterations — at
	// 10 iterations the window IS the measurement, so they need an
	// iteration count high enough to reach steady state.
	suites := []struct {
		benchtime string
		bench     string // "" = the -bench flag
		pkgs      []string
	}{
		{*stepBenchtime, "", []string{"./internal/sched/", "./internal/memory/", "./internal/fault/", "./internal/metrics/"}},
		{*serveBenchtime, "", []string{"./internal/service/", "./internal/wire/"}},
		{*replBenchtime, "^BenchmarkClusterReplicate", []string{"./internal/cluster/"}},
		{*benchtime, "^BenchmarkFailover", []string{"./internal/cluster/"}},
		{*benchtime, "", []string{"./internal/explore/", "./internal/sim/", "."}},
	}

	path := *baselinePath
	if path == "" {
		var err error
		path, err = latestSnapshot(".")
		if err != nil {
			fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	baseByName := map[string]benchLine{}
	for _, b := range base.Benchmarks {
		baseByName[normalize(b.Name)] = b
	}
	fmt.Printf("benchgate: baseline %s (commit %s, %s, %s, %d benchmarks)\n",
		path, base.Commit, base.Go, base.Date, len(base.Benchmarks))

	var results []result
	for _, suite := range suites {
		pat := suite.bench
		if pat == "" || *benchPat != "." {
			// An explicit -bench narrows every suite uniformly (local
			// debugging); the per-suite pattern only applies to the
			// default full run.
			pat = *benchPat
		}
		args := append([]string{"test", "-run", "xxx", "-bench", pat,
			"-benchmem", "-benchtime", suite.benchtime}, suite.pkgs...)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			fatal(fmt.Errorf("go %s: %v", strings.Join(args, " "), err))
		}
		results = append(results, parseResults(string(out))...)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed from go test output"))
	}

	g := compare(results, baseByName, *nsTol, *allocTol, missingOK)
	if len(g.skipped) > 0 {
		fmt.Printf("benchgate: %d benchmarks not in baseline (informational): %s\n",
			len(g.skipped), strings.Join(g.skipped, ", "))
	}
	fmt.Printf("benchgate: compared %d benchmarks against %s\n", g.compared, path)
	if len(g.missing) > 0 {
		fmt.Println("benchgate: MISSING (in baseline, absent from this run):")
		for _, m := range g.missing {
			fmt.Println("  " + m)
		}
	}
	if len(g.regressions) > 0 {
		fmt.Println("benchgate: REGRESSIONS:")
		for _, r := range g.regressions {
			fmt.Println("  " + r)
		}
	}
	if !g.ok() {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
