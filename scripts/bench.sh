#!/usr/bin/env bash
# bench.sh — run the benchmark families (P1–P4 tables, scheduler steps,
# explorer, sweep harness, free-mode memory primitives, serving tier
# including crash recovery, fault-injection points, metrics core) and
# emit a BENCH_<n>.json snapshot at the repo root, seeding the performance
# trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [benchtime]
#
# benchtime defaults to 1s; pass e.g. "100x" for a quick smoke snapshot.
# The snapshot number <n> is one past the highest existing BENCH_<n>.json.
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime="${1:-1s}"

n=0
for f in BENCH_*.json; do
  [ -e "$f" ] || continue
  num="${f#BENCH_}"
  num="${num%.json}"
  case "$num" in
    *[!0-9]*) continue ;;
  esac
  if [ "$num" -ge "$n" ]; then
    n=$((num + 1))
  fi
done
out="BENCH_${n}.json"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (-benchtime=$benchtime) ..." >&2
go test -run xxx -bench 'BenchmarkArbiter|BenchmarkGroupConsensus|BenchmarkGroupVsFlatCAS|BenchmarkObstructionFree|BenchmarkGatedObject|BenchmarkHierarchyConstruction|BenchmarkExplore|BenchmarkUniversal' \
  -benchmem -benchtime="$benchtime" . | tee "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/sched/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/explore/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/sim/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/memory/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/service/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/fault/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/metrics/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/wire/ | tee -a "$raw" >&2
go test -run xxx -bench . -benchmem -benchtime="$benchtime" ./internal/cluster/ | tee -a "$raw" >&2

# Convert `go test -bench` lines into a JSON snapshot. Each benchmark line
# has the shape:
#   BenchmarkName/sub-8  1234  567 ns/op  [8.00 steps/op]  90 B/op  2 allocs/op
GO_VERSION="$(go version | awk '{print $3}')" \
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
BEGIN {
  print "{"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"commit\": \"%s\",\n", commit
  printf "  \"go\": \"%s\",\n", ENVIRON["GO_VERSION"]
  print  "  \"benchmarks\": ["
  first = 1
}
/^Benchmark/ {
  name = $1; iters = $2
  ns = ""; steps = ""; bytes = ""; allocs = ""; extra = ""; rate = ""; runrate = ""; oprate = ""; batchsz = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns = $i
    if ($(i+1) == "steps/op")  steps = $i
    if ($(i+1) == "steps/cmd") steps = $i
    if ($(i+1) == "states")    extra = $i
    if ($(i+1) == "states/s")  rate = $i
    if ($(i+1) == "runs/s")    runrate = $i
    if ($(i+1) == "ops/s")     oprate = $i
    if ($(i+1) == "cmds/batch") batchsz = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  if (!first) print ","
  first = 0
  printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters
  if (ns != "")     printf ", \"ns_per_op\": %s", ns
  if (steps != "")  printf ", \"steps_per_op\": %s", steps
  if (extra != "")  printf ", \"states\": %s", extra
  if (rate != "")   printf ", \"states_per_sec\": %s", rate
  if (runrate != "") printf ", \"runs_per_sec\": %s", runrate
  if (oprate != "")  printf ", \"ops_per_sec\": %s", oprate
  if (batchsz != "") printf ", \"cmds_per_batch\": %s", batchsz
  if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  printf "}"
}
END {
  print ""
  print "  ]"
  print "}"
}' "$raw" > "$out"

echo "wrote $out" >&2
