// Command groupdemo runs one interactive demonstration of the Figure 5
// group-based asymmetric consensus algorithm under a chosen schedule and
// crash pattern, printing the per-process outcome.
//
// Usage:
//
//	groupdemo [-n 6] [-x 2] [-first 0] [-crash pid@step,...] [-seed 1] [-rr]
//
// -first g makes g the first participating group (groups before g do not
// propose). -crash injects crashes, e.g. -crash 0@3,4@0.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/group"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "groupdemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("groupdemo", flag.ContinueOnError)
	n := fs.Int("n", 6, "number of processes")
	x := fs.Int("x", 2, "group size (the (x,x)-live consensus width)")
	first := fs.Int("first", 0, "first participating group (earlier groups stay silent)")
	crashSpec := fs.String("crash", "", "crash injections, comma-separated pid@step")
	seed := fs.Uint64("seed", 1, "random-schedule seed")
	rr := fs.Bool("rr", false, "use round-robin instead of the random schedule")
	budget := fs.Int64("budget", 500000, "step budget")
	if err := fs.Parse(args); err != nil {
		return err
	}

	crashes := map[int]int64{}
	if *crashSpec != "" {
		for _, part := range strings.Split(*crashSpec, ",") {
			pid, step, ok := strings.Cut(part, "@")
			if !ok {
				return fmt.Errorf("bad crash spec %q (want pid@step)", part)
			}
			id, err := strconv.Atoi(pid)
			if err != nil {
				return fmt.Errorf("bad crash pid %q: %v", pid, err)
			}
			at, err := strconv.ParseInt(step, 10, 64)
			if err != nil {
				return fmt.Errorf("bad crash step %q: %v", step, err)
			}
			crashes[id] = at
		}
	}

	gc, err := group.New[string]("demo", *n, *x)
	if err != nil {
		return err
	}
	fmt.Printf("processes: %d, group size: %d, groups: %d\n", *n, *x, gc.NumGroups())
	for g := 0; g < gc.NumGroups(); g++ {
		mark := ""
		if g < *first {
			mark = " (silent)"
		}
		fmt.Printf("  group %d: %v%s\n", g, gc.Group(g), mark)
	}

	var inner sched.Policy = sched.NewRandom(*seed)
	if *rr {
		inner = &sched.RoundRobin{}
	}
	policy := sched.Policy(&sched.CrashAt{Inner: inner, At: crashes})

	r := sched.NewRun(*n, policy)
	for g := *first; g < gc.NumGroups(); g++ {
		for _, id := range gc.Group(g) {
			r.Spawn(id, func(p *sched.Proc) {
				v, err := gc.Propose(p, fmt.Sprintf("value-of-p%d", p.ID()))
				if err != nil {
					panic(err)
				}
				p.SetResult(v)
			})
		}
	}
	res := r.Execute(*budget)

	fmt.Printf("\ntotal steps: %d\n", res.TotalSteps)
	for id := 0; id < *n; id++ {
		g := gc.GroupOf(id)
		switch {
		case g < *first:
			fmt.Printf("  p%d (group %d): did not participate\n", id, g)
		case res.Status[id] == sched.Done:
			fmt.Printf("  p%d (group %d): decided %q in %d steps\n",
				id, g, res.Values[id], res.Steps[id])
		default:
			fmt.Printf("  p%d (group %d): %v after %d steps\n",
				id, g, res.Status[id], res.Steps[id])
		}
	}
	return nil
}
