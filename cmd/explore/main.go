// Command explore runs the explicit-state model checker on the built-in
// protocol models and prints a valence report in the vocabulary of
// Section 3.3 of the paper.
//
// Usage:
//
//	explore [-model NAME] [-workers N] [-inputs CSV] [-rounds R] [-limit S]
//
// Built-in models (-model):
//
//	gated  — the (2,1)-live gated consensus object (E8's Lemma 3-5 model)
//	group  — the Figure 5 group consensus, two singleton groups
//	of     — register-only obstruction-free consensus, round cap -rounds
//	of8    — shorthand for of with an 8-round cap
//	tas2 … tas6 — the test&set consensus protocol for 2…6 processes
//	          (consensus number 2: tas2 is correct, tas3+ violate agreement)
//
// -workers selects the exploration engine: 1 runs the sequential BFS, >1
// runs the sharded parallel engine with that many goroutines, 0 uses one
// per CPU. The report is identical for every worker count — state indices
// never appear in it, only numbering-independent counts and verdicts — so
// `explore -workers 1` and `explore -workers 8` outputs can be diffed, which
// is exactly what the CI explore-smoke job does. Timing and throughput go
// to stderr.
//
// -inputs is a comma-separated per-process input assignment. Without it the
// pre-parallel CLI default applies: process 0 proposes -in0 and every other
// process proposes -in1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/explore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

// newModel resolves a -model name; isOF marks the obstruction-free models,
// whose reports include the livelock-pump search.
func newModel(name string, rounds int) (p explore.Protocol, isOF bool, err error) {
	switch name {
	case "gated":
		return explore.GatedModel{}, false, nil
	case "group":
		return explore.GroupModel{}, false, nil
	case "of":
		return explore.OFModel{Rounds: rounds}, true, nil
	case "of8":
		return explore.OFModel{Rounds: 8}, true, nil
	case "tas2", "tas3", "tas4", "tas5", "tas6":
		procs, _ := strconv.Atoi(strings.TrimPrefix(name, "tas"))
		return explore.TASModel{Procs: procs}, false, nil
	default:
		return nil, false, fmt.Errorf("unknown model %q", name)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	model := fs.String("model", "gated", "protocol model: gated | group | of | of8 | tas2..tas6")
	inputsCSV := fs.String("inputs", "", "comma-separated per-process inputs (default: alternating 0,1,...)")
	in0 := fs.Int("in0", 0, "input of process 0 (ignored when -inputs is set)")
	in1 := fs.Int("in1", 1, "input of every other process (ignored when -inputs is set)")
	rounds := fs.Int("rounds", 2, "round cap for the of model")
	limit := fs.Int("limit", 2000000, "state budget")
	workers := fs.Int("workers", 1, "exploration workers: 1 = sequential engine, >1 = parallel engine, 0 = one per CPU")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, isOF, err := newModel(*model, *rounds)
	if err != nil {
		return err
	}

	inputs := make([]int, p.N())
	if *inputsCSV != "" {
		parts := strings.Split(*inputsCSV, ",")
		if len(parts) != p.N() {
			return fmt.Errorf("-inputs has %d values, model %s needs %d", len(parts), *model, p.N())
		}
		for i, s := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("-inputs: %v", err)
			}
			inputs[i] = v
		}
	} else {
		// Compatibility default (matches the pre-parallel CLI): process 0
		// gets -in0, every other process gets -in1.
		inputs[0] = *in0
		for i := 1; i < len(inputs); i++ {
			inputs[i] = *in1
		}
	}

	t0 := time.Now()
	g, err := explore.ExploreParallel(p, inputs, *limit, *workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	fmt.Fprintf(os.Stderr, "explored %d states in %v (%.0f states/s, workers=%d)\n",
		g.Size(), elapsed, float64(g.Size())/elapsed.Seconds(), *workers)

	// Everything below is numbering-independent: counts, valences and
	// verdicts only, never state indices, so reports diff clean across
	// engines and worker counts.
	fmt.Printf("model %s, inputs %v\n", *model, inputs)
	fmt.Printf("reachable states:  %d\n", g.Size())
	fmt.Printf("initial valence:   %v\n", g.InitialValence())

	if _, bad := g.CheckAgreement(); bad {
		fmt.Printf("agreement:         VIOLATED (some reachable state has two conflicting decisions)\n")
	} else {
		fmt.Printf("agreement:         holds (exhaustive)\n")
	}
	fmt.Printf("validity:          %v (exhaustive)\n", g.CheckValidity(inputs))

	for pid := 0; pid < p.N(); pid++ {
		if idx := g.FindDecider(pid, 10000); idx >= 0 {
			fmt.Printf("decider:           p%d is a decider at a bivalent state (exhaustive check: %v)\n",
				pid, g.IsDecider(idx, pid))
		}
	}

	pairs := g.FindCriticalPairs()
	fmt.Printf("critical configs:  %d\n", len(pairs))
	// Aggregate by (p, q, objects) — the multiset is numbering-independent.
	agg := map[string]int{}
	for _, c := range pairs {
		agg[fmt.Sprintf("p%d/p%d pending on %q (register=%v) and %q (register=%v)",
			c.P, c.Q, c.AccessP.Object, c.AccessP.IsRegister,
			c.AccessQ.Object, c.AccessQ.IsRegister)]++
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s: %d\n", k, agg[k])
	}

	if isOF {
		pump := g.FindReachable(g.Initial(), func(s explore.State) bool {
			return explore.AtRoundBoundary(s, 1)
		})
		fmt.Printf("livelock pump:     found=%v\n", pump >= 0)
	}
	return nil
}
