// Command explore runs the explicit-state model checker on the built-in
// protocol models and prints a valence report in the vocabulary of
// Section 3.3 of the paper.
//
// Usage:
//
//	explore [-model gated|of|tas2|tas3] [-in0 v] [-in1 v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/explore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	model := fs.String("model", "gated", "protocol model: gated | of | tas2 | tas3")
	in0 := fs.Int("in0", 0, "input of process 0")
	in1 := fs.Int("in1", 1, "input of process 1")
	rounds := fs.Int("rounds", 2, "round cap for the of model")
	limit := fs.Int("limit", 2000000, "state budget")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		p      explore.Protocol
		inputs []int
	)
	switch *model {
	case "gated":
		p, inputs = explore.GatedModel{}, []int{*in0, *in1}
	case "of":
		p, inputs = explore.OFModel{Rounds: *rounds}, []int{*in0, *in1}
	case "tas2":
		p, inputs = explore.TASModel{Procs: 2}, []int{*in0, *in1}
	case "tas3":
		p, inputs = explore.TASModel{Procs: 3}, []int{*in0, *in1, *in1}
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	g, err := explore.Explore(p, inputs, *limit)
	if err != nil {
		return err
	}
	fmt.Printf("model %s, inputs %v\n", *model, inputs)
	fmt.Printf("reachable states:  %d\n", g.Size())
	fmt.Printf("initial valence:   %v\n", g.InitialValence())

	if viol, bad := g.CheckAgreement(); bad {
		fmt.Printf("agreement:         VIOLATED (state %d: p%d decided %d, p%d decided %d)\n",
			viol.StateIdx, viol.P, viol.VP, viol.Q, viol.VQ)
	} else {
		fmt.Printf("agreement:         holds (exhaustive)\n")
	}
	fmt.Printf("validity:          %v (exhaustive)\n", g.CheckValidity(inputs))

	for pid := 0; pid < p.N(); pid++ {
		if idx := g.FindDecider(pid, 10000); idx >= 0 {
			fmt.Printf("decider:           p%d is a decider at a bivalent state (index %d)\n", pid, idx)
		}
	}

	pairs := g.FindCriticalPairs()
	fmt.Printf("critical configs:  %d\n", len(pairs))
	for i, c := range pairs {
		if i >= 4 {
			fmt.Printf("  ... %d more\n", len(pairs)-4)
			break
		}
		fmt.Printf("  state %d: p%d and p%d both pending on %q (register=%v)\n",
			c.StateIdx, c.P, c.Q, c.AccessP.Object, c.AccessP.IsRegister)
	}

	if *model == "of" {
		pump := g.FindReachable(g.Initial(), func(s explore.State) bool {
			return explore.AtRoundBoundary(s, 1)
		})
		fmt.Printf("livelock pump:     found=%v\n", pump >= 0)
	}
	return nil
}
