// Command sim is the sharded scenario-sweep driver: it runs large batches of
// deterministic seeded schedules against every registered scenario and
// checks property oracles on each run.
//
// Usage:
//
//	sim [-scenarios all|name,name,...] [-seeds N] [-workers N]
//	    [-max-failures N] [-json FILE] [-list] [-v]
//	sim -replay scenario:seed
//
// Examples:
//
//	# Sweep every scenario with 10000 seeds each on 8 workers, writing the
//	# aggregate JSON report; the exit status is non-zero if any oracle was
//	# violated.
//	sim -scenarios all -seeds 10000 -workers 8 -json report.json
//
//	# Sweep only the consensus scenarios.
//	sim -scenarios consensus/waitfree,consensus/gated -seeds 5000
//
//	# Re-run one failing seed solo, with the full granted-step trace. The
//	# token is printed verbatim in every failure report ("-replay <token>"),
//	# and the re-run is bit-identical to the in-sweep run regardless of how
//	# many workers the sweep used.
//	sim -replay 'group/asym:1234'
//
//	# List the registered scenarios.
//	sim -list
//
// Every run is deterministic in its (scenario, seed) pair: the generated
// schedule, the subject's construction, and the proposal values all derive
// from the seed, and workers share nothing. The JSON report aggregates
// verdicts, per-run step and latency histograms, and up to -max-failures
// repro tokens per scenario.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/sim"

	// Each algorithm package registers its scenarios in init.
	_ "repro/internal/arbiter"
	_ "repro/internal/cluster"
	_ "repro/internal/common2"
	_ "repro/internal/consensus"
	_ "repro/internal/group"
	_ "repro/internal/hierarchy"
	_ "repro/internal/liveness"
	_ "repro/internal/service"
	_ "repro/internal/universal"
)

// jsonReport is the file shape: the sweep report plus provenance.
type jsonReport struct {
	Date      string `json:"date"`
	Scenarios string `json:"scenarios_flag"`
	sim.Report
}

func main() {
	scenariosFlag := flag.String("scenarios", "all", "comma-separated scenario names, or \"all\"")
	seeds := flag.Uint64("seeds", 1000, "seeds per scenario (0..N-1)")
	workers := flag.Int("workers", 0, "worker-pool size (default GOMAXPROCS)")
	maxFailures := flag.Int("max-failures", 10, "failure samples kept per scenario in the report")
	jsonPath := flag.String("json", "", "write the JSON report to this file")
	replay := flag.String("replay", "", "re-run one failing seed solo (token: scenario:seed)")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	verbose := flag.Bool("v", false, "print every failure sample's violations in full")
	flag.Parse()

	if *list {
		for _, s := range sim.All() {
			fmt.Printf("%-28s subject=%s\n", s.Name, s.Subject)
		}
		return
	}

	if *replay != "" {
		out, err := sim.Replay(*replay)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		if !out.OK() {
			os.Exit(1)
		}
		return
	}

	scenarios, err := sim.Select(*scenariosFlag)
	if err != nil {
		fatal(err)
	}
	rep := sim.Sweep(scenarios, sim.Options{
		Seeds:       *seeds,
		Workers:     *workers,
		MaxFailures: *maxFailures,
	})
	fmt.Print(rep.Summary())
	if *verbose {
		for _, sr := range rep.Scenarios {
			for _, f := range sr.FailureSamples {
				for _, v := range f.Violations {
					fmt.Printf("  %s: %s\n", f.Token, v)
				}
			}
		}
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(jsonReport{
			Date:      time.Now().UTC().Format(time.RFC3339),
			Scenarios: *scenariosFlag,
			Report:    rep,
		}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sim: wrote %s\n", *jsonPath)
	}

	if !rep.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "sim:") {
		msg = "sim: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
