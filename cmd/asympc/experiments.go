package main

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/consensus"
	"repro/internal/group"
	"repro/internal/hierarchy"
	"repro/internal/sched"
	"repro/internal/universal"
)

func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// expArbiter regenerates E1: for each (owners, guests) shape, run the
// arbiter under round-robin plus seeded random schedules with and without a
// random single crash, and report safety and termination.
func expArbiter(seeds int) error {
	fmt.Println("E1 — arbiter object (Figure 4, Theorem 5)")
	fmt.Println("owners guests | runs  agree valid  term(all-correct)")
	for _, shape := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 1}, {2, 4}, {4, 4}} {
		ocnt, gcnt := shape[0], shape[1]
		n := ocnt + gcnt
		runs, agreeOK, validOK, termOK := 0, 0, 0, 0
		for seed := 0; seed < seeds; seed++ {
			for _, withCrash := range []bool{false, true} {
				arb := arbiter.New("arb",
					consensus.NewWaitFree[bool]("xc", allIDs(ocnt)))
				var inner sched.Policy = sched.NewRandom(uint64(seed + 1))
				victim := -1
				if withCrash {
					victim = seed % n
					if victim < ocnt && ocnt == 1 {
						victim = ocnt // keep one correct owner so termination is promised
					}
					inner = &sched.CrashAt{Inner: inner, At: map[int]int64{victim: int64(seed % 7)}}
				}
				r := sched.NewRun(n, inner)
				for id := 0; id < ocnt; id++ {
					r.Spawn(id, func(p *sched.Proc) { p.SetResult(arb.Arbitrate(p, arbiter.Owner)) })
				}
				for id := ocnt; id < n; id++ {
					r.Spawn(id, func(p *sched.Proc) { p.SetResult(arb.Arbitrate(p, arbiter.Guest)) })
				}
				res := r.Execute(100000)
				runs++
				var winner *arbiter.Role
				agree, valid, term := true, true, true
				for id := 0; id < n; id++ {
					if id == victim {
						continue
					}
					if res.Status[id] != sched.Done {
						term = false
						continue
					}
					w := res.Values[id].(arbiter.Role)
					if winner == nil {
						winner = &w
					} else if *winner != w {
						agree = false
					}
				}
				if winner != nil {
					if *winner == arbiter.Owner && ocnt == 0 {
						valid = false
					}
					if *winner == arbiter.Guest && gcnt == 0 {
						valid = false
					}
				}
				if agree {
					agreeOK++
				}
				if valid {
					validOK++
				}
				if term {
					termOK++
				}
			}
		}
		fmt.Printf("%6d %6d | %5d %5d %5d  %5d\n", ocnt, gcnt, runs, agreeOK, validOK, termOK)
	}
	fmt.Println("expected: agree == valid == term == runs in every row")
	return nil
}

// expGroup regenerates E2: the asymmetric termination property across n, x
// and the first participating group y.
func expGroup(seeds int) error {
	fmt.Println("E2 — group-based asymmetric consensus (Figure 5, Theorem 6)")
	fmt.Println("    n  x  m  firstGroup | runs  safeOK  allDecided")
	for _, shape := range [][2]int{{4, 2}, {6, 2}, {6, 3}, {9, 3}, {12, 4}} {
		n, x := shape[0], shape[1]
		m := (n + x - 1) / x
		for y := 0; y < m; y++ {
			runs, safeOK, liveOK := 0, 0, 0
			for seed := 0; seed < seeds; seed++ {
				gc, err := group.New[int]("gc", n, x)
				if err != nil {
					return err
				}
				var participants []int
				for g := y; g < m; g++ {
					participants = append(participants, gc.Group(g)...)
				}
				r := sched.NewRun(n, sched.NewRandom(uint64(seed+1)))
				for _, id := range participants {
					r.Spawn(id, func(p *sched.Proc) {
						v, err := gc.Propose(p, 100+p.ID())
						if err != nil {
							panic(err)
						}
						p.SetResult(v)
					})
				}
				res := r.Execute(500000)
				runs++
				safe, live := true, true
				var dec *int
				for _, id := range participants {
					if res.Status[id] != sched.Done {
						live = false
						continue
					}
					v := res.Values[id].(int)
					if dec == nil {
						dec = &v
					} else if *dec != v {
						safe = false
					}
				}
				if dec != nil {
					okVal := false
					for _, id := range participants {
						if *dec == 100+id {
							okVal = true
						}
					}
					if !okVal {
						safe = false
					}
				}
				if safe {
					safeOK++
				}
				if live {
					liveOK++
				}
			}
			fmt.Printf("%5d %2d %2d  %9d | %4d  %6d  %10d\n", n, x, m, y, runs, safeOK, liveOK)
		}
	}
	fmt.Println("expected: safeOK == allDecided == runs in every row")
	return nil
}

// expFairness regenerates E3: for every process there is a pattern where its
// value is decided.
func expFairness(_ int) error {
	fmt.Println("E3 — fairness: every process's value can be decided")
	fmt.Println("    n  x | winners whose value won under their pattern")
	for _, shape := range [][2]int{{4, 2}, {6, 2}, {9, 3}} {
		n, x := shape[0], shape[1]
		won := 0
		for winner := 0; winner < n; winner++ {
			gc, err := group.New[int]("gc", n, x)
			if err != nil {
				return err
			}
			solo := make([]int, 500)
			for i := range solo {
				solo[i] = winner
			}
			r := sched.NewRun(n, &sched.Script{Seq: solo, Then: &sched.RoundRobin{}})
			r.SpawnAll(func(p *sched.Proc) {
				v, err := gc.Propose(p, 100+p.ID())
				if err != nil {
					panic(err)
				}
				p.SetResult(v)
			})
			res := r.Execute(500000)
			if res.Status[winner] == sched.Done && res.Values[winner].(int) == 100+winner {
				won++
			}
		}
		fmt.Printf("%5d %2d | %d/%d\n", n, x, won, n)
	}
	fmt.Println("expected: n/n in every row")
	return nil
}

// expHierarchy regenerates E4 (Theorem 3 lower bound) and E5 (Theorem 2
// upper-bound shape).
func expHierarchy(seeds int) error {
	fmt.Println("E4 — consensus number of (x+1, x)-live objects is >= x+1 (Theorem 3)")
	fmt.Println("    x | runs  allDecideAgree")
	for x := 1; x <= 5; x++ {
		runs, ok := 0, 0
		for seed := 0; seed < seeds; seed++ {
			c := hierarchy.NewConsensusFromGated[int]("t3", x)
			n := x + 1
			r := sched.NewRun(n, sched.NewRandom(uint64(seed+1)))
			r.SpawnAll(func(p *sched.Proc) {
				p.SetResult(c.Propose(p, p.ID()))
			})
			res := r.Execute(200000)
			runs++
			good := true
			var dec *int
			for id := 0; id < n; id++ {
				if res.Status[id] != sched.Done {
					good = false
					continue
				}
				v := res.Values[id].(int)
				if dec == nil {
					dec = &v
				} else if *dec != v {
					good = false
				}
			}
			if good {
				ok++
			}
		}
		fmt.Printf("%5d | %4d  %d\n", x, runs, ok)
	}
	fmt.Println("expected: allDecideAgree == runs (wait-free consensus for x+1 processes)")
	fmt.Println()
	fmt.Println("E5 — Theorem 2 adversary: promoted guest of an (x+2, x)-live object starves")
	fmt.Println("    x | promoted-port status under crash(X)+alternation (want starved)")
	for x := 1; x <= 4; x++ {
		n := x + 2
		c := hierarchy.NewGatedPromotionCandidate[int]("t2", n, x)
		promoted := c.PromotedPort()
		crash := map[int]int64{}
		for id := 0; id < x; id++ {
			crash[id] = 0
		}
		r := sched.NewRun(n, &sched.CrashAt{
			Inner: &sched.Subset{IDs: []int{promoted, promoted + 1}},
			At:    crash,
		})
		r.SpawnAll(func(p *sched.Proc) { p.SetResult(c.Propose(p, p.ID())) })
		res := r.Execute(30000)
		fmt.Printf("%5d | %v after %d steps\n", x, res.Status[promoted], res.Steps[promoted])
	}
	return nil
}

// expImpossibility regenerates E6 (Theorem 1 candidates) and E7 (Theorem 4).
func expImpossibility(_ int) error {
	fmt.Println("E6 — Theorem 1: every (n,1)-live candidate from (n-1,n-1)-live objects fails")

	fmt.Println("candidate          | violated guarantee          | witness")
	{ // group-wait
		const n = 4
		c := hierarchy.NewGroupWaitCandidate[int]("c1", n)
		r := sched.NewRun(n, sched.Solo{ID: n - 1})
		r.Spawn(n-1, func(p *sched.Proc) { p.SetResult(c.Propose(p, p.ID())) })
		res := r.Execute(20000)
		fmt.Printf("group-wait         | OF for p%d                   | solo run: %v after %d steps\n",
			n-1, res.Status[n-1], res.Steps[n-1])
	}
	{ // OF-for-all
		c := hierarchy.NewOFForAllCandidate[int]("c2", 2)
		r := sched.NewRun(2, &sched.Cycle{Seq: hierarchy.LivelockSchedule(0, 1)})
		r.SpawnAll(func(p *sched.Proc) { p.SetResult(c.Propose(p, p.ID())) })
		res := r.Execute(70000)
		fmt.Printf("OF-for-all         | WF for p0                   | livelock cycle: %v after %d steps\n",
			res.Status[0], res.Steps[0])
	}
	{ // Figure 5 with groups {0..n-2},{n-1}
		const n = 3
		c, err := hierarchy.NewGroupAlgCandidate[int]("c3", n)
		if err != nil {
			return err
		}
		r := sched.NewRun(n, &sched.CrashAt{
			Inner: &sched.Script{Seq: []int{0, 0, 0}, Then: sched.Solo{ID: n - 1}},
			At:    map[int]int64{0: 3},
		})
		r.Spawn(0, func(p *sched.Proc) {
			if v, err := c.Propose(p, 0); err == nil {
				p.SetResult(v)
			}
		})
		r.Spawn(n-1, func(p *sched.Proc) {
			if v, err := c.Propose(p, n-1); err == nil {
				p.SetResult(v)
			}
		})
		res := r.Execute(30000)
		fmt.Printf("figure-5 (2 groups)| OF for p%d                   | owner announce+crash, solo guest: %v\n",
			n-1, res.Status[n-1])
	}
	fmt.Println()
	fmt.Println("E7 — Theorem 4: OF-for-all + fault-freedom-for-one is impossible")
	{
		c := hierarchy.NewOFForAllCandidate[int]("c4", 2)
		r := sched.NewRun(2, &sched.Cycle{Seq: hierarchy.LivelockSchedule(0, 1)})
		r.SpawnAll(func(p *sched.Proc) { p.SetResult(c.Propose(p, p.ID())) })
		res := r.Execute(140000)
		fmt.Printf("fault-free run (all participate, no crash), periodic schedule:\n")
		fmt.Printf("  steps: p0=%d p1=%d, decided: %v/%v (want none)\n",
			res.Steps[0], res.Steps[1], res.HasValue[0], res.HasValue[1])
	}
	return nil
}

// expUniversal regenerates E10: the universal construction over wait-free
// and over group-based asymmetric consensus cells.
func expUniversal(_ int) error {
	fmt.Println("E10 — universal construction (replicated log)")
	fmt.Println("cells            n  cmds | total-steps steps/cmd allConverged")
	type cmd struct{ Proc, Seq int }
	for _, cfg := range []struct {
		name  string
		n     int
		group bool
	}{
		{"wait-free", 3, false}, {"wait-free", 6, false}, {"wait-free", 9, false},
		{"group(x=2)", 4, true}, {"group(x=2)", 6, true}, {"group(x=3)", 9, true},
	} {
		const k = 3
		var log *universal.Log[cmd]
		if cfg.group {
			x := 2
			if cfg.n == 9 {
				x = 3
			}
			log = universal.NewLog[cmd](func(i int) universal.Proposer[cmd] {
				gc, err := group.New[cmd](fmt.Sprintf("cell%d", i), cfg.n, x)
				if err != nil {
					panic(err)
				}
				return universal.GroupCell[cmd]{ProposeFn: gc.Propose}
			})
		} else {
			log = universal.NewLog[cmd](func(i int) universal.Proposer[cmd] {
				return consensus.NewWaitFree[cmd](fmt.Sprintf("cell%d", i), allIDs(cfg.n))
			})
		}
		counts := make([]int, cfg.n)
		r := sched.NewRun(cfg.n, &sched.RoundRobin{})
		r.SpawnAll(func(p *sched.Proc) {
			rep := universal.NewReplica[int, cmd](log, 0, func(s int, c cmd) int { return s + 1 })
			var last int
			for seq := 0; seq < k; seq++ {
				last = rep.Exec(p, cmd{Proc: p.ID(), Seq: seq})
			}
			counts[p.ID()] = last
		})
		res := r.Execute(5000000)
		converged := res.DoneCount() == cfg.n
		total := res.TotalSteps
		fmt.Printf("%-14s %3d %5d | %11d %9.1f %t\n",
			cfg.name, cfg.n, cfg.n*k, total, float64(total)/float64(cfg.n*k), converged)
	}
	fmt.Println("expected: allConverged true; group cells cost more steps/cmd than wait-free cells")
	return nil
}
