// Command asympc is the experiment harness for the reproduction of "On
// Asymmetric Progress Conditions" (Imbs, Raynal, Taubenfeld, PODC 2010).
//
// Each subcommand regenerates one experiment family from EXPERIMENTS.md,
// printing the same tables recorded there. All schedules are deterministic
// or seeded, so reruns reproduce the recorded rows exactly.
//
// Usage:
//
//	asympc <experiment> [-seeds N]
//
// Experiments:
//
//	arbiter        E1  — arbiter safety and termination matrix (Theorem 5)
//	group          E2  — group consensus asymmetric termination (Theorem 6)
//	fairness       E3  — every process's value can win
//	hierarchy      E4/E5 — consensus number of (y, x)-live objects (Thms 2, 3)
//	impossibility  E6/E7 — Theorem 1 and Theorem 4 candidate failures
//	valence        E8  — model-checked Lemmas 3, 4, 5 and the livelock pump
//	common2        E9  — Common2 boundary (Section 3.5)
//	universal      E10 — universal construction over asymmetric consensus
//	contract       (y, x)-liveness contracts via the liveness checkers
//	all            every experiment in order
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "asympc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("asympc", flag.ContinueOnError)
	seeds := fs.Int("seeds", 200, "number of random-schedule seeds per configuration")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: asympc [flags] <experiment>")
		fmt.Fprintln(os.Stderr, "experiments: arbiter group fairness hierarchy impossibility valence common2 universal contract all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment, got %d args", fs.NArg())
	}

	experiments := map[string]func(seeds int) error{
		"arbiter":       expArbiter,
		"group":         expGroup,
		"fairness":      expFairness,
		"hierarchy":     expHierarchy,
		"impossibility": expImpossibility,
		"valence":       expValence,
		"common2":       expCommon2,
		"universal":     expUniversal,
		"contract":      expContract,
	}
	name := fs.Arg(0)
	if name == "all" {
		order := []string{"arbiter", "group", "fairness", "hierarchy",
			"impossibility", "valence", "common2", "universal", "contract"}
		for _, n := range order {
			if err := experiments[n](*seeds); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			fmt.Println()
		}
		return nil
	}
	exp, ok := experiments[name]
	if !ok {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
	return exp(*seeds)
}
