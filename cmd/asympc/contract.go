package main

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/liveness"
	"repro/internal/sched"
)

// expContract checks full (y, x)-liveness contracts with the liveness
// checkers: each port class of each object must satisfy exactly its own
// progress condition across the adversarial schedule families.
func expContract(_ int) error {
	fmt.Println("Contract — (y, x)-liveness checked per port class")
	fmt.Println("object            | condition                      | schedules | holds")

	for _, shape := range [][2]int{{3, 1}, {4, 2}, {6, 3}} {
		n, x := shape[0], shape[1]
		wf := allIDs(x)
		scenario := func(policy sched.Policy) sched.Results {
			g := consensus.NewGated[int]("g", allIDs(n), wf)
			r := sched.NewRun(n, policy)
			r.SpawnAll(func(p *sched.Proc) {
				p.SetResult(g.Propose(p, p.ID()))
			})
			return r.Execute(200000)
		}
		reports := liveness.CheckYXLive(scenario, n, wf, liveness.Options{})
		for _, rep := range reports {
			fmt.Printf("(%d,%d)-live gated | %-30s | %9d | %v\n",
				n, x, rep.Condition, rep.SchedulesRun, rep.Holds())
		}
	}

	// The discriminating negative: guests must NOT be wait-free. Run the
	// wait-freedom checker against the guests with the X ports crashed; a
	// passing (i.e. held) report here would mean the object is stronger
	// than its contract and the hierarchy experiments would be vacuous.
	const n, x = 4, 2
	guests := []int{2, 3}
	scenario := func(policy sched.Policy) sched.Results {
		g := consensus.NewGated[int]("g", allIDs(n), allIDs(x))
		r := sched.NewRun(n, &sched.CrashAt{Inner: policy, At: map[int]int64{0: 0, 1: 0}})
		r.SpawnAll(func(p *sched.Proc) {
			p.SetResult(g.Propose(p, p.ID()))
		})
		return r.Execute(30000)
	}
	rep := liveness.CheckWaitFree(scenario, n, guests, liveness.Options{Budget: 30000})
	fmt.Printf("(%d,%d)-live gated | %-30s | %9d | %v (violation expected)\n",
		n, x, "wait-freedom for guests", rep.SchedulesRun, rep.Holds())
	if len(rep.Violations) > 0 {
		fmt.Printf("  first violation: %s\n", rep.Violations[0])
	}
	return nil
}
