package main

import (
	"fmt"
	"runtime"

	"repro/internal/common2"
	"repro/internal/explore"
	"repro/internal/sched"
)

// exploreWorkers sizes the worker pool for the E8/E9 explorations: the
// sharded engine on every CPU, capped so small models don't pay fan-out.
func exploreWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// expValence regenerates E8: the Section 3 lemma machinery, model-checked.
func expValence(_ int) error {
	fmt.Println("E8 — valence machinery (Section 3.3, Lemmas 3-5), model-checked")

	fmt.Println("model: (2,1)-live gated consensus, inputs (0,1)")
	g, err := explore.Explore(explore.GatedModel{}, []int{0, 1}, 100000)
	if err != nil {
		return err
	}
	fmt.Printf("  reachable states: %d\n", g.Size())
	fmt.Printf("  Lemma 3 (empty run bivalent):        %v (valence %v)\n",
		g.InitialValence().Bivalent(), g.InitialValence())
	dec := g.FindDecider(0, 1000)
	fmt.Printf("  Lemma 4 (decider for wait-free p0):  found=%v, exhaustive-check=%v\n",
		dec >= 0, dec >= 0 && g.IsDecider(dec, 0))
	pairs := g.FindCriticalPairs()
	sameObj, nonReg := true, true
	for _, c := range pairs {
		if c.AccessP.Object != c.AccessQ.Object {
			sameObj = false
		}
		if c.AccessP.IsRegister || c.AccessQ.IsRegister {
			nonReg = false
		}
	}
	fmt.Printf("  Lemma 5 (critical configurations):   %d found, same-object=%v, non-register=%v\n",
		len(pairs), sameObj, nonReg)
	viol, bad := g.CheckAgreement()
	fmt.Printf("  safety (exhaustive):                 agreement=%v validity=%v\n",
		!bad, g.CheckValidity([]int{0, 1}))
	_ = viol

	fmt.Println("model: register-only OF consensus (2 rounds), inputs (0,1)")
	of, err := explore.ExploreParallel(explore.OFModel{Rounds: 2}, []int{0, 1}, 2000000, exploreWorkers())
	if err != nil {
		return err
	}
	fmt.Printf("  reachable states: %d\n", of.Size())
	fmt.Printf("  Lemma 3 (empty run bivalent):        %v\n", of.InitialValence().Bivalent())
	pump := of.FindReachable(of.Initial(), func(s explore.State) bool {
		return explore.AtRoundBoundary(s, 1)
	})
	fmt.Printf("  Theorem 4 livelock pump:             found=%v (round-1 boundary, distinct estimates, undecided)\n",
		pump >= 0)
	ofViol, ofBad := of.CheckAgreement()
	fmt.Printf("  safety (exhaustive):                 agreement=%v validity=%v\n",
		!ofBad, of.CheckValidity([]int{0, 1}))
	_ = ofViol

	fmt.Println("model: Figure 5 group consensus (2 singleton groups), inputs (0,1)")
	gm, err := explore.ExploreParallel(explore.GroupModel{}, []int{0, 1}, 2000000, exploreWorkers())
	if err != nil {
		return err
	}
	gmViol, gmBad := gm.CheckAgreement()
	_ = gmViol
	fmt.Printf("  reachable states: %d\n", gm.Size())
	fmt.Printf("  safety (exhaustive):                 agreement=%v validity=%v\n",
		!gmBad, gm.CheckValidity([]int{0, 1}))
	// Theorem 1 consistency: the group object has register critical pairs,
	// and at each one some process is not solo-live (Lemma 2's escape).
	regPairs, consistent := 0, true
	for _, c := range gm.FindCriticalPairs() {
		if !c.AccessP.IsRegister {
			continue
		}
		regPairs++
		if gm.SoloDecides(c.StateIdx, 0, 60) && gm.SoloDecides(c.StateIdx, 1, 60) {
			consistent = false
		}
	}
	fmt.Printf("  Thm 1 consistency:                   %d register critical pairs, "+
		"all with a non-solo-live process: %v\n", regPairs, consistent)
	return nil
}

// expCommon2 regenerates E9: the Common2 boundary of Section 3.5.
func expCommon2(seeds int) error {
	fmt.Println("E9 — Common2 (Section 3.5)")

	fmt.Println("2-process consensus constructions (agreement+validity+termination over seeded schedules):")
	type mk struct {
		name string
		new  func() interface {
			Propose(p *sched.Proc, v int) int
		}
	}
	objs := []mk{
		{"test&set", func() interface {
			Propose(p *sched.Proc, v int) int
		} {
			return common2.NewTASConsensus2[int]("t", 0, 1)
		}},
		{"swap", func() interface {
			Propose(p *sched.Proc, v int) int
		} {
			return common2.NewSwapConsensus2[int]("s", 0, 1)
		}},
		{"queue", func() interface {
			Propose(p *sched.Proc, v int) int
		} {
			return common2.NewQueueConsensus2[int]("q", 0, 1)
		}},
		{"stack", func() interface {
			Propose(p *sched.Proc, v int) int
		} {
			return common2.NewStackConsensus2[int]("st", 0, 1)
		}},
	}
	for _, o := range objs {
		ok := 0
		for seed := 0; seed < seeds; seed++ {
			c := o.new()
			r := sched.NewRun(2, sched.NewRandom(uint64(seed+1)))
			r.SpawnAll(func(p *sched.Proc) { p.SetResult(c.Propose(p, p.ID()+10)) })
			res := r.Execute(1000)
			if res.DoneCount() == 2 &&
				res.Values[0].(int) == res.Values[1].(int) &&
				(res.Values[0].(int) == 10 || res.Values[0].(int) == 11) {
				ok++
			}
		}
		fmt.Printf("  %-9s consensus for 2: %d/%d runs correct\n", o.name, ok, seeds)
	}

	fmt.Println("consensus number boundary (explicit-state, exhaustive):")
	g2, err := explore.Explore(explore.TASModel{Procs: 2}, []int{0, 1}, 100000)
	if err != nil {
		return err
	}
	_, bad2 := g2.CheckAgreement()
	fmt.Printf("  T&S protocol, 2 processes: states=%d agreement-violation=%v (want false)\n",
		g2.Size(), bad2)
	g3, err := explore.Explore(explore.TASModel{Procs: 3}, []int{0, 1, 1}, 2000000)
	if err != nil {
		return err
	}
	v3, bad3 := g3.CheckAgreement()
	fmt.Printf("  T&S protocol, 3 processes: states=%d agreement-violation=%v (want true; e.g. p%d=%d vs p%d=%d)\n",
		g3.Size(), bad3, v3.P, v3.VP, v3.Q, v3.VQ)
	// The parallel engine pushes the same exhaustive check past what the
	// string-keyed sequential checker was run on: the violation persists for
	// every wider T&S protocol, as consensus number 2 predicts.
	for _, procs := range []int{4, 5} {
		inputs := make([]int, procs)
		for i := range inputs {
			inputs[i] = i % 2
		}
		gp, err := explore.ExploreParallel(explore.TASModel{Procs: procs}, inputs, 2000000, exploreWorkers())
		if err != nil {
			return err
		}
		_, bad := gp.CheckAgreement()
		fmt.Printf("  T&S protocol, %d processes: states=%d agreement-violation=%v (want true)\n",
			procs, gp.Size(), bad)
	}
	return nil
}
