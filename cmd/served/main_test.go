package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
)

func testServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Store) {
	t.Helper()
	store := service.New(cfg)
	srv := httptest.NewServer(newMux(store, cfg.Faults))
	t.Cleanup(srv.Close)
	return srv, store
}

func post(t *testing.T, srv *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestOpHandler(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2})
	defer store.Close()

	code, body := post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`)
	if code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("put = %d %q", code, body)
	}
	code, body = post(t, srv, "/op", `{"op":"get","key":"a"}`)
	if code != http.StatusOK || !strings.Contains(body, `"val":"1"`) {
		t.Fatalf("get = %d %q", code, body)
	}
	code, body = post(t, srv, "/op", `{"op":"cas","key":"a","old":"1","val":"2"}`)
	if code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("cas = %d %q", code, body)
	}
	code, body = post(t, srv, "/op", `{"op":"cas","key":"a","old":"1","val":"3"}`)
	if code != http.StatusOK || strings.Contains(body, `"ok":true`) {
		t.Fatalf("failed cas = %d %q, want ok=false", code, body)
	}
	// A get on a missing key answers 200 with ok=false, not an error.
	code, body = post(t, srv, "/op", `{"op":"get","key":"ghost"}`)
	if code != http.StatusOK || strings.Contains(body, `"ok":true`) {
		t.Fatalf("missing get = %d %q", code, body)
	}
}

func TestOpHandlerRejectsMalformed(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 1})
	defer store.Close()

	for _, body := range []string{
		`{not json`,
		`{"op":"bump","key":"a"}`, // unknown op kind
		``,
	} {
		code, _ := post(t, srv, "/op", body)
		if code != http.StatusBadRequest {
			t.Errorf("op %q = %d, want 400", body, code)
		}
	}
	for _, body := range []string{
		`[{not json`,
		`[{"op":"put","key":"a","val":"1"},{"op":"bump","key":"b"}]`,
		`{"op":"put"}`, // object where array expected
	} {
		code, _ := post(t, srv, "/batch", body)
		if code != http.StatusBadRequest {
			t.Errorf("batch %q = %d, want 400", body, code)
		}
	}
	// Method routing: GET on /op is not found by the method-aware mux.
	resp, err := http.Get(srv.URL + "/op")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /op = %d, want method rejection", resp.StatusCode)
	}
}

func TestBatchHandler(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2})
	defer store.Close()

	code, body := post(t, srv, "/batch",
		`[{"op":"put","key":"x","val":"1"},{"op":"put","key":"y","val":"2"},{"op":"get","key":"x"}]`)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %q", code, body)
	}
	var res []service.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("batch response %q: %v", body, err)
	}
	if len(res) != 3 || !res[0].OK || !res[1].OK {
		t.Fatalf("batch results = %+v", res)
	}
	// An empty batch is a valid no-op.
	code, body = post(t, srv, "/batch", `[]`)
	if code != http.StatusOK {
		t.Fatalf("empty batch = %d %q", code, body)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2})
	defer store.Close()

	post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.TotalOps != 1 || st.Ops["put"] != 1 {
		t.Fatalf("stats = %+v, want 1 put", st)
	}
	if st.Audit.Violations != 0 {
		t.Fatalf("audit violations: %v", st.Audit.ViolationSamples)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestStatusSaturated: a queue.send drop (the fault-injection stand-in for
// a saturated queue) maps to 429 — the op was never enqueued, so the client
// may retry the identical request.
func TestStatusSaturated(t *testing.T) {
	fs := fault.NewSet()
	srv, store := testServer(t, service.Config{Shards: 1, Faults: fs})
	defer store.Close()

	fs.Arm(service.FaultQueueSend, fault.Rule{Action: fault.Drop, Count: 1})
	code, body := post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated op = %d %q, want 429", code, body)
	}
	// The rule is spent: the retry succeeds.
	code, body = post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`)
	if code != http.StatusOK {
		t.Fatalf("retry after 429 = %d %q, want 200", code, body)
	}
}

// TestStatusDeadline: a request whose context deadline expires after the
// enqueue maps to 504 — the op may still commit, so the client must retry
// with the same id. Served through ServeHTTP directly so the request
// context is ours, not the network client's.
func TestStatusDeadline(t *testing.T) {
	fs := fault.NewSet()
	fs.Arm(service.FaultWorkerPreCommit, fault.Rule{Action: fault.Delay,
		Delay: int64(100 * time.Millisecond), Count: -1})
	store := service.New(service.Config{Shards: 1, WorkersPerShard: 1, Faults: fs})
	defer store.Close()
	mux := newMux(store, fs)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("POST", "/op",
		strings.NewReader(`{"op":"put","key":"a","val":"1","id":7}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadlined op = %d %q, want 504", rec.Code, rec.Body.String())
	}
	// Disarm and retry with the same id: the store answers exactly once —
	// either the first attempt's late commit via dedup or a fresh apply.
	fs.Disarm(service.FaultWorkerPreCommit)
	req = httptest.NewRequest("POST", "/op",
		strings.NewReader(`{"op":"put","key":"a","val":"1","id":7}`))
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry after 504 = %d %q, want 200", rec.Code, rec.Body.String())
	}
}

// TestStatusClosed: ops against a draining store map to 503.
func TestStatusClosed(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 1})
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, srv, "/op", `{"op":"get","key":"a"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("op on closed store = %d %q, want 503", code, body)
	}
	code, body = post(t, srv, "/batch", `[{"op":"get","key":"a"}]`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("batch on closed store = %d %q, want 503", code, body)
	}
}

// TestOpIDDeduplicates: resubmitting an op with the same client id answers
// from the dedup table without reapplying — the wire-level contract behind
// "retry a 504 with the same id".
func TestOpIDDeduplicates(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 1})
	defer store.Close()

	code, body := post(t, srv, "/op", `{"op":"put","key":"k","val":"first","id":42}`)
	if code != http.StatusOK {
		t.Fatalf("put = %d %q", code, body)
	}
	// Same id, different payload: the duplicate must not apply.
	code, body = post(t, srv, "/op", `{"op":"put","key":"k","val":"second","id":42}`)
	if code != http.StatusOK || !strings.Contains(body, `"val":"first"`) {
		t.Fatalf("duplicate = %d %q, want the first attempt's cached result", code, body)
	}
	code, body = post(t, srv, "/op", `{"op":"get","key":"k"}`)
	if code != http.StatusOK || !strings.Contains(body, `"val":"first"`) {
		t.Fatalf("get after duplicate = %d %q, want the first write preserved", code, body)
	}
}

// TestChaosEndpoint arms, observes and disarms a fault rule over HTTP, and
// verifies the endpoint is absent without -chaos.
func TestChaosEndpoint(t *testing.T) {
	fs := fault.NewSet()
	srv, store := testServer(t, service.Config{Shards: 1, Faults: fs})
	defer store.Close()

	code, body := post(t, srv, "/chaos",
		fmt.Sprintf(`{"point":%q,"action":"drop","count":1}`, service.FaultQueueSend))
	if code != http.StatusOK {
		t.Fatalf("arm = %d %q", code, body)
	}
	if code, body = post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`); code != http.StatusTooManyRequests {
		t.Fatalf("op under armed drop = %d %q, want 429", code, body)
	}
	resp, err := http.Get(srv.URL + "/chaos")
	if err != nil {
		t.Fatal(err)
	}
	var pts map[string]fault.PointStats
	if err := json.NewDecoder(resp.Body).Decode(&pts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pts[service.FaultQueueSend].Acted != 1 {
		t.Fatalf("chaos stats = %+v, want 1 acted at %s", pts, service.FaultQueueSend)
	}
	if code, body = post(t, srv, "/chaos",
		fmt.Sprintf(`{"point":%q,"action":"off"}`, service.FaultQueueSend)); code != http.StatusOK {
		t.Fatalf("disarm = %d %q", code, body)
	}
	if code, body = post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`); code != http.StatusOK {
		t.Fatalf("op after disarm = %d %q, want 200", code, body)
	}
	if code, _ = post(t, srv, "/chaos", `{"point":"worker.preCommit","action":"explode"}`); code != http.StatusBadRequest {
		t.Fatalf("bad action = %d, want 400", code)
	}

	// Without a fault set the endpoint does not exist.
	plain, plainStore := testServer(t, service.Config{Shards: 1})
	defer plainStore.Close()
	if code, _ = post(t, plain, "/chaos", `{"point":"queue.send","action":"drop"}`); code == http.StatusOK {
		t.Fatal("chaos endpoint served without -chaos")
	}
}

// TestStatsGoroutines: /stats carries the process goroutine count for the
// soak harness's leak assertion.
func TestStatsGoroutines(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 1})
	defer store.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Goroutines int `json:"goroutines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Goroutines <= 0 {
		t.Fatalf("goroutines = %d, want > 0", st.Goroutines)
	}
}

// TestDrainWhileInFlight closes the store while requests are in flight
// through the HTTP layer: every response must be either a committed 200 or
// a clean 503 (ErrClosed) — never a hang, a 500, or a torn result.
func TestDrainWhileInFlight(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2, QueueDepth: 4})

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan string, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				code, body := post(t, srv, "/op",
					fmt.Sprintf(`{"op":"put","key":"k%d","val":"c%d-%d"}`, i%4, c, i))
				switch code {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					if !strings.Contains(body, "closed") {
						errs <- fmt.Sprintf("503 without ErrClosed: %q", body)
					}
					return
				default:
					errs <- fmt.Sprintf("unexpected status %d: %q", code, body)
					return
				}
			}
		}(c)
	}
	close(start)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// After the drain, /op reports closed and /stats still serves.
	code, _ := post(t, srv, "/op", `{"op":"get","key":"a"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("op after close = %d, want 503", code)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after close: %v %v", resp, err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Audit.Violations != 0 {
		t.Fatalf("audit violations after drain: %v", st.Audit.ViolationSamples)
	}
}

// TestMetricsEndpoint: /metrics serves a Prometheus text exposition whose
// counters reflect the traffic just served.
func TestMetricsEndpoint(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2})
	defer store.Close()

	post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`)
	post(t, srv, "/op", `{"op":"get","key":"a"}`)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want prometheus 0.0.4 exposition", ct)
	}
	for _, want := range []string{
		"# TYPE service_ops_total counter",
		`service_ops_total{kind="put"} 1`,
		`service_ops_total{kind="get"} 1`,
		"# TYPE service_op_latency_ns histogram",
		"service_queue_depth{",
		"service_inflight 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestConfigEndpoint: GET returns the live tunables; POST patches them
// (absent fields keep their value); invalid patches are rejected with 400
// and change nothing.
func TestConfigEndpoint(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 1, QueueDepth: 32, MaxBatch: 8})
	defer store.Close()

	resp, err := http.Get(srv.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	var tun service.Tunables
	if err := json.NewDecoder(resp.Body).Decode(&tun); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tun.MaxBatch != 8 || tun.QueueDepth != 32 {
		t.Fatalf("GET /config = %+v, want boot tunables", tun)
	}

	// Partial patch: only max_batch stated, the rest must survive.
	code, body := post(t, srv, "/config", `{"max_batch": 4}`)
	if code != http.StatusOK {
		t.Fatalf("patch = %d %q", code, body)
	}
	got := store.Tunables()
	if got.MaxBatch != 4 || got.QueueDepth != 32 {
		t.Fatalf("after patch: %+v, want max_batch=4 queue_depth=32", got)
	}

	// Invalid patches: rejected, nothing changes.
	for _, bad := range []string{
		`{"queue_depth": 33}`, // above boot capacity
		`{"max_batch": 0}`,
		`{"audit_sample": 2}`,
		`{"que_depth": 16}`, // typo: unknown field must not silently no-op
		`{not json`,
	} {
		code, body = post(t, srv, "/config", bad)
		if code != http.StatusBadRequest {
			t.Errorf("patch %q = %d %q, want 400", bad, code, body)
		}
	}
	if store.Tunables() != got {
		t.Fatalf("rejected patch mutated tunables: %+v", store.Tunables())
	}
}

// TestConfigReloadMidLoad patches the tunables while traffic is in flight:
// the swap is atomic, every op completes, and the audit stays clean.
func TestConfigReloadMidLoad(t *testing.T) {
	srv, store := testServer(t, service.Config{
		Shards: 2, WorkersPerShard: 2, QueueDepth: 32, MaxBatch: 8,
		Audit: service.AuditConfig{WindowOps: 8},
	})

	var wg sync.WaitGroup
	const clients, ops = 4, 150
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				code, body := post(t, srv, "/op",
					fmt.Sprintf(`{"op":"put","key":"k%d","val":"c%d-%d"}`, i%5, c, i))
				if code != http.StatusOK {
					t.Errorf("op under reload = %d %q", code, body)
					return
				}
			}
		}(c)
	}
	for _, patch := range []string{
		`{"max_batch": 1}`, `{"queue_depth": 2}`,
		`{"audit_sample": 0.5}`, `{"max_batch": 16, "queue_depth": 32}`,
	} {
		if code, body := post(t, srv, "/config", patch); code != http.StatusOK {
			t.Errorf("mid-load patch %q = %d %q", patch, code, body)
		}
	}
	wg.Wait()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.TotalOps != clients*ops {
		t.Fatalf("TotalOps = %d, want %d", st.TotalOps, clients*ops)
	}
	if st.Audit.Violations != 0 {
		t.Fatalf("audit violations under reload: %v", st.Audit.ViolationSamples)
	}
}

// TestReloadFromFile: the SIGHUP path — a tunables patch file is applied
// over the live tunables, and a bad file is rejected without effect.
func TestReloadFromFile(t *testing.T) {
	store := service.New(service.Config{Shards: 1, QueueDepth: 16, MaxBatch: 8})
	defer store.Close()

	path := t.TempDir() + "/tunables.json"
	if err := os.WriteFile(path, []byte(`{"max_batch": 2, "audit_sample": 0.25}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tun, err := reloadFromFile(store, path)
	if err != nil {
		t.Fatalf("reload from file: %v", err)
	}
	if tun.MaxBatch != 2 || tun.AuditSample != 0.25 || tun.QueueDepth != 16 {
		t.Fatalf("applied tunables = %+v", tun)
	}

	if err := os.WriteFile(path, []byte(`{"queue_depth": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reloadFromFile(store, path); err == nil {
		t.Fatal("out-of-range file accepted")
	}
	if _, err := reloadFromFile(store, path+".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
	if got := store.Tunables(); got.MaxBatch != 2 || got.QueueDepth != 16 {
		t.Fatalf("failed reloads mutated tunables: %+v", got)
	}
}
