package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/service"
)

func testServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Store) {
	t.Helper()
	store := service.New(cfg)
	srv := httptest.NewServer(newMux(store))
	t.Cleanup(srv.Close)
	return srv, store
}

func post(t *testing.T, srv *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestOpHandler(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2})
	defer store.Close()

	code, body := post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`)
	if code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("put = %d %q", code, body)
	}
	code, body = post(t, srv, "/op", `{"op":"get","key":"a"}`)
	if code != http.StatusOK || !strings.Contains(body, `"val":"1"`) {
		t.Fatalf("get = %d %q", code, body)
	}
	code, body = post(t, srv, "/op", `{"op":"cas","key":"a","old":"1","val":"2"}`)
	if code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("cas = %d %q", code, body)
	}
	code, body = post(t, srv, "/op", `{"op":"cas","key":"a","old":"1","val":"3"}`)
	if code != http.StatusOK || strings.Contains(body, `"ok":true`) {
		t.Fatalf("failed cas = %d %q, want ok=false", code, body)
	}
	// A get on a missing key answers 200 with ok=false, not an error.
	code, body = post(t, srv, "/op", `{"op":"get","key":"ghost"}`)
	if code != http.StatusOK || strings.Contains(body, `"ok":true`) {
		t.Fatalf("missing get = %d %q", code, body)
	}
}

func TestOpHandlerRejectsMalformed(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 1})
	defer store.Close()

	for _, body := range []string{
		`{not json`,
		`{"op":"bump","key":"a"}`, // unknown op kind
		``,
	} {
		code, _ := post(t, srv, "/op", body)
		if code != http.StatusBadRequest {
			t.Errorf("op %q = %d, want 400", body, code)
		}
	}
	for _, body := range []string{
		`[{not json`,
		`[{"op":"put","key":"a","val":"1"},{"op":"bump","key":"b"}]`,
		`{"op":"put"}`, // object where array expected
	} {
		code, _ := post(t, srv, "/batch", body)
		if code != http.StatusBadRequest {
			t.Errorf("batch %q = %d, want 400", body, code)
		}
	}
	// Method routing: GET on /op is not found by the method-aware mux.
	resp, err := http.Get(srv.URL + "/op")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /op = %d, want method rejection", resp.StatusCode)
	}
}

func TestBatchHandler(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2})
	defer store.Close()

	code, body := post(t, srv, "/batch",
		`[{"op":"put","key":"x","val":"1"},{"op":"put","key":"y","val":"2"},{"op":"get","key":"x"}]`)
	if code != http.StatusOK {
		t.Fatalf("batch = %d %q", code, body)
	}
	var res []service.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("batch response %q: %v", body, err)
	}
	if len(res) != 3 || !res[0].OK || !res[1].OK {
		t.Fatalf("batch results = %+v", res)
	}
	// An empty batch is a valid no-op.
	code, body = post(t, srv, "/batch", `[]`)
	if code != http.StatusOK {
		t.Fatalf("empty batch = %d %q", code, body)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2})
	defer store.Close()

	post(t, srv, "/op", `{"op":"put","key":"a","val":"1"}`)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.TotalOps != 1 || st.Ops["put"] != 1 {
		t.Fatalf("stats = %+v, want 1 put", st)
	}
	if st.Audit.Violations != 0 {
		t.Fatalf("audit violations: %v", st.Audit.ViolationSamples)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestDrainWhileInFlight closes the store while requests are in flight
// through the HTTP layer: every response must be either a committed 200 or
// a clean 503 (ErrClosed) — never a hang, a 500, or a torn result.
func TestDrainWhileInFlight(t *testing.T) {
	srv, store := testServer(t, service.Config{Shards: 2, QueueDepth: 4})

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan string, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < 40; i++ {
				code, body := post(t, srv, "/op",
					fmt.Sprintf(`{"op":"put","key":"k%d","val":"c%d-%d"}`, i%4, c, i))
				switch code {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					if !strings.Contains(body, "closed") {
						errs <- fmt.Sprintf("503 without ErrClosed: %q", body)
					}
					return
				default:
					errs <- fmt.Sprintf("unexpected status %d: %q", code, body)
					return
				}
			}
		}(c)
	}
	close(start)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// After the drain, /op reports closed and /stats still serves.
	code, _ := post(t, srv, "/op", `{"op":"get","key":"a"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("op after close = %d, want 503", code)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after close: %v %v", resp, err)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Audit.Violations != 0 {
		t.Fatalf("audit violations after drain: %v", st.Audit.ViolationSamples)
	}
}
