package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// clusterTestConfig is a small store config for single-node cluster tests.
func clusterTestConfig() service.Config {
	return service.Config{
		Shards: 2, WorkersPerShard: 1, QueueDepth: 64, MaxBatch: 16,
	}
}

// reserveAddr binds and releases one loopback ephemeral port.
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestStartClusterSingleNode: a one-peer cluster (quorum 1) serves through
// the same mux as the single-process mode — ops route and commit, /healthz
// returns the node status document, the per-role probes answer by role, and
// /metrics carries the cluster families.
func TestStartClusterSingleNode(t *testing.T) {
	node, err := startCluster(clusterTestConfig(), 0, reserveAddr(t), "frontend,store", "")
	if err != nil {
		t.Fatalf("startCluster: %v", err)
	}
	defer node.Close()

	srv := httptest.NewServer(buildMux(node, nil, node, nil))
	defer srv.Close()

	// The first op blocks through the initial ownership election (production
	// default timers), so give it time.
	client := srv.Client()
	client.Timeout = 60 * time.Second
	if code, body := post(t, srv, "/op", `{"op":"put","key":"k1","val":"v1"}`); code != http.StatusOK {
		t.Fatalf("put: %d %s", code, body)
	}
	code, body := post(t, srv, "/op", `{"op":"get","key":"k1"}`)
	if code != http.StatusOK || !strings.Contains(body, `"v1"`) {
		t.Fatalf("get: %d %s", code, body)
	}
	if code, body := post(t, srv, "/batch", `[{"op":"put","key":"k2","val":"v2"},{"op":"get","key":"k2"}]`); code != http.StatusOK || !strings.Contains(body, `"v2"`) {
		t.Fatalf("batch: %d %s", code, body)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, readAll(t, resp)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"frontend":true`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := get("/healthz/frontend"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz/frontend: %d %s", code, body)
	}
	if code, body := get("/healthz/store"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz/store: %d %s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "cluster_owned_shards") {
		t.Fatalf("metrics: %d missing cluster families:\n%s", code, body)
	}
	if code, body := get("/stats"); code != http.StatusOK || !strings.Contains(body, `"goroutines"`) {
		t.Fatalf("stats: %d %s", code, body)
	}
	// Single-process-only endpoints are absent in cluster mode.
	if code, _ := get("/config"); code == http.StatusOK {
		t.Fatal("GET /config should not exist in cluster mode")
	}
}

// TestClusterRoleHealth: a store-only node answers 503 on the frontend
// probe and ok on the store probe.
func TestClusterRoleHealth(t *testing.T) {
	node, err := startCluster(clusterTestConfig(), 0, reserveAddr(t), "store", "0")
	if err != nil {
		t.Fatalf("startCluster: %v", err)
	}
	defer node.Close()
	srv := httptest.NewServer(buildMux(node, nil, node, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz/frontend")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "not a frontend") {
		t.Fatalf("healthz/frontend on store-only node: %d %s", resp.StatusCode, body)
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz/store")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz/store on store-only node: %d %s", resp.StatusCode, body)
	}
}

// TestStartClusterFlagErrors: every malformed flag combination is refused
// before any listener binds.
func TestStartClusterFlagErrors(t *testing.T) {
	cfg := clusterTestConfig()
	cases := []struct {
		name       string
		node       int
		peers      string
		roles      string
		storeNodes string
	}{
		{"node out of range", 2, "a:1,b:2", "frontend,store", ""},
		{"negative node", -1, "a:1", "frontend,store", ""},
		{"unknown role", 0, "a:1", "frontend,zebra", ""},
		{"no role", 0, "a:1", ",", ""},
		{"non-numeric store node", 0, "a:1", "frontend,store", "x"},
		{"store node out of range", 0, "a:1", "frontend,store", "7"},
	}
	for _, tc := range cases {
		if n, err := startCluster(cfg, tc.node, tc.peers, tc.roles, tc.storeNodes); err == nil {
			n.Close()
			t.Errorf("%s: startCluster accepted", tc.name)
		}
	}
}
