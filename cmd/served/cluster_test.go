package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// clusterTestConfig is a small store config for single-node cluster tests.
func clusterTestConfig() service.Config {
	return service.Config{
		Shards: 2, WorkersPerShard: 1, QueueDepth: 64, MaxBatch: 16,
	}
}

// reserveAddr binds and releases one loopback ephemeral port.
func reserveAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestStartClusterSingleNode: a one-peer cluster (quorum 1) serves through
// the same mux as the single-process mode — ops route and commit, /healthz
// returns the node status document, the per-role probes answer by role, and
// /metrics carries the cluster families.
func TestStartClusterSingleNode(t *testing.T) {
	node, err := startCluster(clusterTestConfig(), 0, reserveAddr(t), "frontend,store", "", 0, 0)
	if err != nil {
		t.Fatalf("startCluster: %v", err)
	}
	defer node.Close()

	srv := httptest.NewServer(buildMux(node, nil, node, nil))
	defer srv.Close()

	// The first op blocks through the initial ownership election (production
	// default timers), so give it time.
	client := srv.Client()
	client.Timeout = 60 * time.Second
	if code, body := post(t, srv, "/op", `{"op":"put","key":"k1","val":"v1"}`); code != http.StatusOK {
		t.Fatalf("put: %d %s", code, body)
	}
	code, body := post(t, srv, "/op", `{"op":"get","key":"k1"}`)
	if code != http.StatusOK || !strings.Contains(body, `"v1"`) {
		t.Fatalf("get: %d %s", code, body)
	}
	if code, body := post(t, srv, "/batch", `[{"op":"put","key":"k2","val":"v2"},{"op":"get","key":"k2"}]`); code != http.StatusOK || !strings.Contains(body, `"v2"`) {
		t.Fatalf("batch: %d %s", code, body)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, readAll(t, resp)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"frontend":true`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := get("/healthz/frontend"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz/frontend: %d %s", code, body)
	}
	if code, body := get("/healthz/store"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz/store: %d %s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "cluster_owned_shards") {
		t.Fatalf("metrics: %d missing cluster families:\n%s", code, body)
	}
	if code, body := get("/stats"); code != http.StatusOK || !strings.Contains(body, `"goroutines"`) {
		t.Fatalf("stats: %d %s", code, body)
	}
	// Single-process-only endpoints are absent in cluster mode.
	if code, _ := get("/config"); code == http.StatusOK {
		t.Fatal("GET /config should not exist in cluster mode")
	}
}

// TestClusterRoleHealth: a store-only node answers 503 on the frontend
// probe and ok on the store probe.
func TestClusterRoleHealth(t *testing.T) {
	node, err := startCluster(clusterTestConfig(), 0, reserveAddr(t), "store", "0", 0, 0)
	if err != nil {
		t.Fatalf("startCluster: %v", err)
	}
	defer node.Close()
	srv := httptest.NewServer(buildMux(node, nil, node, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz/frontend")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "not a frontend") {
		t.Fatalf("healthz/frontend on store-only node: %d %s", resp.StatusCode, body)
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz/store")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz/store on store-only node: %d %s", resp.StatusCode, body)
	}
}

// TestStartClusterFlagErrors: every malformed flag combination is refused
// before any listener binds.
func TestStartClusterFlagErrors(t *testing.T) {
	cfg := clusterTestConfig()
	cases := []struct {
		name       string
		node       int
		peers      string
		roles      string
		storeNodes string
	}{
		{"node out of range", 2, "a:1,b:2", "frontend,store", ""},
		{"negative node", -1, "a:1", "frontend,store", ""},
		{"unknown role", 0, "a:1", "frontend,zebra", ""},
		{"no role", 0, "a:1", ",", ""},
		{"non-numeric store node", 0, "a:1", "frontend,store", "x"},
		{"store node out of range", 0, "a:1", "frontend,store", "7"},
		// Role/membership inconsistency: a store-role node outside the
		// replica set would campaign forever; a replica-set member without
		// the store role would silently weaken the quorum; a frontend-only
		// node under the all-peers default is the latter in disguise.
		{"store role not in store-nodes", 0, "a:1,b:2,c:3", "frontend,store", "1,2"},
		{"replica without store role", 0, "a:1,b:2,c:3", "frontend", "0,1"},
		{"frontend-only without store-nodes", 0, "a:1,b:2,c:3", "frontend", ""},
		{"duplicate store node", 0, "a:1,b:2,c:3", "frontend,store", "0,0,1"},
	}
	for _, tc := range cases {
		if n, err := startCluster(cfg, tc.node, tc.peers, tc.roles, tc.storeNodes, 0, 0); err == nil {
			n.Close()
			t.Errorf("%s: startCluster accepted", tc.name)
		}
	}
}

// TestStartClusterSplitRoles: the canonical split topology — store role on
// an explicit replica subset, frontend elsewhere — passes validation on
// both sides.
func TestStartClusterSplitRoles(t *testing.T) {
	addrs := []string{reserveAddr(t), reserveAddr(t), reserveAddr(t)}
	peers := strings.Join(addrs, ",")
	store, err := startCluster(clusterTestConfig(), 0, peers, "store", "0,1", 0, 0)
	if err != nil {
		t.Fatalf("store node refused: %v", err)
	}
	defer store.Close()
	fe, err := startCluster(clusterTestConfig(), 2, peers, "frontend", "0,1", 0, 0)
	if err != nil {
		t.Fatalf("frontend node refused: %v", err)
	}
	defer fe.Close()
}

// TestClusterMetricsIncludeStores: cluster-mode /metrics must expose the
// shard replica stores' service families (distinguished by cluster_shard)
// alongside the node's cluster families — one scrape, no duplicate TYPE
// blocks.
func TestClusterMetricsIncludeStores(t *testing.T) {
	node, err := startCluster(clusterTestConfig(), 0, reserveAddr(t), "frontend,store", "", 0, 0)
	if err != nil {
		t.Fatalf("startCluster: %v", err)
	}
	defer node.Close()
	srv := httptest.NewServer(buildMux(node, nil, node, nil))
	defer srv.Close()

	client := srv.Client()
	client.Timeout = 60 * time.Second
	if code, body := post(t, srv, "/op", `{"op":"put","key":"mk","val":"mv"}`); code != http.StatusOK {
		t.Fatalf("put: %d %s", code, body)
	}
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d\n%s", resp.StatusCode, body)
	}
	for _, want := range []string{
		"cluster_owned_shards",
		`cluster_shard="0"`,
		`cluster_shard="1"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// Merged exposition stays a valid scrape: one TYPE line per family.
	types := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if types[line] {
				t.Fatalf("duplicate %q in merged scrape", line)
			}
			types[line] = true
		}
	}
}
