// Command served is the HTTP/JSON front end of the free-mode serving tier
// (internal/service): a sharded key-value store whose every shard is a
// replicated log in the style of the universal construction, continuously
// audited for linearizability while it serves, with supervised workers that
// are respawned after a crash.
//
// Endpoints:
//
//	POST /op       {"op":"get|put|cas","key":K,"val":V,"old":O,"id":N} → {"val":..,"ok":..}
//	POST /batch    [op, op, ...] → [result, result, ...]
//	GET  /stats    full service.Stats JSON plus the process goroutine count
//	GET  /metrics  Prometheus text exposition of the store's live metrics
//	GET  /config   current runtime-reloadable tunables (service.Tunables JSON)
//	POST /config   patch the tunables: absent fields keep their current value,
//	               invalid values are rejected with 400 and nothing changes
//	GET  /healthz  "ok"
//	POST /chaos    {"point":P,"action":"crash|delay|drop",...} arm a fault rule
//	GET  /chaos    fault-point counters              (both only with -chaos)
//
// With -config FILE, SIGHUP re-reads FILE (same JSON shape as POST /config,
// patched over the current tunables) and applies it — the classic ops
// workflow of editing a config file and HUPping the process.
//
// With -wire ADDR the server additionally listens for the binary wire
// protocol (docs/PROTOCOL.md, internal/wire) on ADDR: length-prefixed
// frames, connection multiplexing, pipelining, and batch frames that feed
// the store's per-shard batch windows directly. The HTTP/JSON mux stays up
// as the compatibility front end; the wire listener is the performance
// front end (~50x the HTTP throughput, see EXPERIMENTS.md PR 8). On
// shutdown the wire listener drains before the store closes.
//
// Typed serving errors map onto distinct status codes, so clients can pick
// the right reaction:
//
//	429 Too Many Requests   queue saturated — the op was never enqueued,
//	                        retry the same request after backing off
//	504 Gateway Timeout     deadline expired after the enqueue — the op may
//	                        still commit; retry with the same client id and
//	                        the store deduplicates
//	503 Service Unavailable the store is draining (shutdown in progress)
//
// On SIGINT/SIGTERM the server stops accepting, drains every queued
// command, flushes the online auditor, prints a final report, and exits 0 —
// or exits 3 if any audited window had no valid linearization.
//
// Run with:
//
//	go run ./cmd/served -addr :8080 -shards 4
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/wire"
)

// backend is the serving surface the HTTP and wire front ends need: a
// single-process store and a cluster front-end node both provide it.
type backend interface {
	Do(ctx context.Context, op service.Op) (service.Result, error)
	DoBatch(ctx context.Context, ops []service.Op) ([]service.Result, error)
	Stats() service.Stats
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 4, "number of replicated-log shards")
	workers := flag.Int("workers-per-shard", 2, "submitter workers (replicas) per shard")
	queue := flag.Int("queue", 1024, "per-shard queue depth (backpressure bound)")
	batch := flag.Int("batch", 64, "max commands grouped into one log command")
	auditOff := flag.Bool("audit-off", false, "disable the online linearizability auditor")
	auditWindow := flag.Int("audit-window", 16, "ops per audited per-key window")
	auditFrac := flag.Float64("audit-frac", 1.0, "fraction of the keyspace audited (by key hash)")
	supervise := flag.Bool("supervise", true, "respawn crashed workers (crash-loop breaker applies)")
	maxRestarts := flag.Int("max-restarts", 8, "per-slot crash budget before the breaker condemns the slot")
	chaos := flag.Bool("chaos", false, "expose the /chaos fault-injection endpoint (testing only)")
	configPath := flag.String("config", "", "tunables file re-read and applied on SIGHUP (JSON, same shape as POST /config)")
	wireAddr := flag.String("wire", "", "also listen for the binary wire protocol on this address (docs/PROTOCOL.md)")
	nodeID := flag.Int("node", 0, "this process's cluster node id (with -peers)")
	peers := flag.String("peers", "", "comma-separated cluster transport addresses indexed by node id; enables multi-node replication (docs/ARCHITECTURE.md)")
	roles := flag.String("roles", "frontend,store", "this node's cluster roles: comma subset of frontend,store")
	storeNodes := flag.String("store-nodes", "", "comma-separated node ids holding shard replicas (default: every peer)")
	maxInflight := flag.Int("max-inflight-entries", 0, "uncommitted log entries a shard owner may pipeline (0 = cluster default)")
	batchWindow := flag.Duration("batch-window", 0, "how long a shard owner holds a non-full log entry open for more routes (0 = commit-latency-first)")
	flag.Parse()

	cfg := service.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxBatch:        *batch,
		Audit: service.AuditConfig{
			Disabled:       *auditOff,
			WindowOps:      *auditWindow,
			SampleFraction: *auditFrac,
		},
		Supervise: service.SuperviseConfig{
			Enabled:     *supervise,
			MaxRestarts: *maxRestarts,
		},
	}
	var faults *fault.Set
	if *chaos {
		faults = fault.NewSet()
		cfg.Faults = faults
	}

	// Single-process mode serves a store directly; -peers switches to a
	// cluster node replicating every shard across the store-role peers
	// (docs/ARCHITECTURE.md, "Multi-node topology").
	var (
		store *service.Store
		node  *cluster.Node
		be    backend
	)
	if *peers != "" {
		var err error
		node, err = startCluster(cfg, *nodeID, *peers, *roles, *storeNodes, *maxInflight, *batchWindow)
		if err != nil {
			log.Fatalf("served: cluster: %v", err)
		}
		be = node
		log.Printf("served: cluster node %d up (roles %s, peers %s)", *nodeID, *roles, *peers)
	} else {
		store = service.New(cfg)
		be = store
	}

	srv := &http.Server{Addr: *addr, Handler: buildMux(be, store, node, faults)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("served: listening on %s (%d shards × %d workers, batch %d, queue %d, audit %v, supervise %v, chaos %v)",
		*addr, *shards, *workers, *batch, *queue, !*auditOff, *supervise, *chaos)

	var wireSrv *wire.Server
	if *wireAddr != "" {
		lis, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("served: wire listen: %v", err)
		}
		wireSrv = wire.NewServer(be, wire.ServerConfig{Logf: log.Printf})
		go func() {
			if err := wireSrv.Serve(lis); err != nil {
				errCh <- fmt.Errorf("wire: %w", err)
			}
		}()
		log.Printf("served: wire protocol (RPW1) on %s", lis.Addr())
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *configPath == "" || store == nil {
				log.Printf("served: SIGHUP ignored (no -config file, or cluster mode)")
				continue
			}
			if tun, err := reloadFromFile(store, *configPath); err != nil {
				log.Printf("served: SIGHUP reload rejected: %v", err)
			} else {
				log.Printf("served: SIGHUP reload applied: %+v", tun)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("served: shutting down")
	case err := <-errCh:
		log.Fatalf("served: %v", err)
	}

	// Drain each listener in turn, timing every stage for the final report:
	// the HTTP front end first, then the wire listener, then the store (or
	// the whole cluster node — replica stores and transport included).
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainStart := time.Now()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("served: http shutdown: %v", err)
	}
	httpDrain := time.Since(drainStart)
	var wireDrain time.Duration
	if wireSrv != nil {
		t := time.Now()
		if err := wireSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("served: wire shutdown: %v", err)
		}
		wireDrain = time.Since(t)
	}
	t := time.Now()
	if node != nil {
		if err := node.Close(); err != nil {
			log.Printf("served: node close: %v", err)
		}
	} else if err := store.Close(); err != nil {
		log.Printf("served: store close: %v", err)
	}
	backendDrain := time.Since(t)
	backendName := "store"
	if node != nil {
		backendName = "node"
	}
	log.Printf("served: drain: http=%s wire=%s %s=%s total=%s",
		httpDrain, wireDrain, backendName, backendDrain, time.Since(drainStart))

	st := be.Stats()
	log.Printf("served: final: %d ops in %d batches (mean %.1f cmds/batch)",
		st.TotalOps, st.Batches, st.BatchSize.Mean())
	for _, kind := range []string{"get", "put", "cas"} {
		l := st.Latency[kind]
		if l.Count == 0 {
			continue
		}
		log.Printf("served:   %-3s n=%-8d mean=%.0fns p50=%dns p99=%dns max=%dns",
			kind, l.Count, l.MeanNs, l.P50Ns, l.P99Ns, l.MaxNs)
	}
	if sup := st.Supervision; sup.Enabled && sup.Restarts > 0 {
		log.Printf("served: supervision: %d restarts, %d condemned, recovery mean=%.0fns p99=%dns",
			sup.Restarts, sup.Condemned, sup.Recovery.MeanNs, sup.Recovery.P99Ns)
	}
	if node != nil {
		cs := node.Status()
		log.Printf("served: cluster: %d failovers, %d elections, %d condemned replicas, %d redirects, %d route retries",
			cs.Failovers, cs.Elections, cs.Condemned, cs.Redirects, cs.RouteRetries)
	}
	a := st.Audit
	log.Printf("served: audit: %d ops sampled, %d windows checked, %d violations, %d gaps, %d dropped",
		a.SampledOps, a.WindowsChecked, a.Violations, a.Gaps, a.DroppedOps)
	if a.Violations > 0 {
		for _, s := range a.ViolationSamples {
			log.Printf("served: VIOLATION: %s", s)
		}
		os.Exit(3)
	}
}

// startCluster parses the -node/-peers/-roles/-store-nodes flags, builds
// the per-shard replica stores (store role) and the RPW1 free transport,
// and starts the cluster node's event loop. maxInflight and batchWindow
// tune the owner's replication pipeline (docs/OPERATIONS.md).
func startCluster(cfg service.Config, nodeID int, peers, roles, storeNodes string, maxInflight int, batchWindow time.Duration) (*cluster.Node, error) {
	addrs := strings.Split(peers, ",")
	if nodeID < 0 || nodeID >= len(addrs) {
		return nil, fmt.Errorf("-node %d out of range for %d peers", nodeID, len(addrs))
	}
	var frontend, storeRole bool
	for _, r := range strings.Split(roles, ",") {
		switch strings.TrimSpace(r) {
		case "frontend":
			frontend = true
		case "store":
			storeRole = true
		case "":
		default:
			return nil, fmt.Errorf("unknown role %q (want frontend,store)", r)
		}
	}
	if !frontend && !storeRole {
		return nil, errors.New("-roles selects neither frontend nor store")
	}
	var replicas []cluster.NodeID
	if storeNodes == "" {
		for i := range addrs {
			replicas = append(replicas, cluster.NodeID(i))
		}
	} else {
		for _, f := range strings.Split(storeNodes, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || id < 0 || id >= len(addrs) {
				return nil, fmt.Errorf("bad -store-nodes entry %q", f)
			}
			replicas = append(replicas, cluster.NodeID(id))
		}
	}
	// Role/membership consistency. A store-role node outside the replica
	// set never receives appends, so its owner timeout fires on every shard
	// and it campaigns forever (vote escalation can depose live owners); a
	// replica-set member without the store role counts in the quorum
	// denominator but never acks or votes, silently costing fault
	// tolerance. Both are misconfigurations, not deployments — refuse them.
	selfReplica := false
	seen := map[cluster.NodeID]bool{}
	for _, id := range replicas {
		if seen[id] {
			return nil, fmt.Errorf("-store-nodes lists node %d twice", id)
		}
		seen[id] = true
		if id == cluster.NodeID(nodeID) {
			selfReplica = true
		}
	}
	if storeRole && !selfReplica {
		return nil, fmt.Errorf("-roles includes store but node %d is not in -store-nodes %q: the replica would never receive appends and would campaign forever", nodeID, storeNodes)
	}
	if !storeRole && selfReplica {
		if storeNodes == "" {
			return nil, fmt.Errorf("-roles %q excludes store but -store-nodes is unset (default: all peers replicate): a frontend-only node needs an explicit -store-nodes naming the store-role peers", roles)
		}
		return nil, fmt.Errorf("node %d is in -store-nodes %q but -roles %q excludes store: it would count toward the quorum without ever acking or voting", nodeID, storeNodes, roles)
	}
	var stores []*service.Store
	if storeRole {
		for s := 0; s < cfg.Shards; s++ {
			shardCfg := cfg
			shardCfg.Shards = 1
			shardCfg.Faults = nil // chaos targets the single-process mode
			stores = append(stores, service.New(shardCfg))
		}
	}
	tr, err := cluster.NewFreeTransport(cluster.NodeID(nodeID), addrs, cluster.FreeConfig{Logf: log.Printf})
	if err != nil {
		return nil, err
	}
	n := cluster.New(cluster.Config{
		ID: cluster.NodeID(nodeID), Nodes: len(addrs), StoreNodes: replicas,
		Shards: cfg.Shards, Frontend: frontend, Store: storeRole,
		MaxInflightEntries: maxInflight, BatchWindow: batchWindow.Nanoseconds(),
		Logf: log.Printf,
	}, tr, stores)
	go n.Run(nil)
	return n, nil
}

// wireOp is the JSON shape of one command on /op and /batch. ID, when
// non-zero, is the client-assigned idempotency token: resubmitting an op
// with the same id after a 504 is answered from the dedup table instead of
// applying twice.
type wireOp struct {
	Op  string `json:"op"`
	Key string `json:"key"`
	Val string `json:"val"`
	Old string `json:"old"`
	ID  uint64 `json:"id,omitempty"`
}

func (w wireOp) decode() (service.Op, error) {
	kind, err := service.KindOf(w.Op)
	if err != nil {
		return service.Op{}, err
	}
	return service.Op{Kind: kind, Key: w.Key, Val: w.Val, Old: w.Old, ID: w.ID}, nil
}

// statusOf maps the serving tier's typed errors onto HTTP status codes; see
// the package comment for the retry semantics each code implies.
func statusOf(err error) int {
	switch {
	case errors.Is(err, service.ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// patchTunables decodes a JSON tunables patch over the store's current
// tunables and applies it: fields absent from the document keep their live
// value, so `{"max_batch": 16}` adjusts one knob without restating the rest.
// Unknown fields are rejected (a typo must not silently no-op). On any
// error the live tunables are untouched.
func patchTunables(store *service.Store, r io.Reader) (service.Tunables, error) {
	tun := store.Tunables()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tun); err != nil {
		return tun, err
	}
	if err := store.Reload(tun); err != nil {
		return tun, err
	}
	return tun, nil
}

// reloadFromFile applies a tunables patch file (the SIGHUP path).
func reloadFromFile(store *service.Store, path string) (service.Tunables, error) {
	f, err := os.Open(path)
	if err != nil {
		return service.Tunables{}, err
	}
	defer f.Close()
	return patchTunables(store, f)
}

// wireRule is the JSON shape of one POST /chaos fault rule.
type wireRule struct {
	Point   string `json:"point"`
	Action  string `json:"action"` // "crash", "delay", "drop", or "off" (disarm)
	After   int64  `json:"after"`
	Count   int64  `json:"count"` // 0 = once, -1 = unlimited
	DelayNs int64  `json:"delay_ns"`
}

// newMux builds the single-process HTTP front end over a store (the shape
// the tests drive with httptest).
func newMux(store *service.Store, faults *fault.Set) *http.ServeMux {
	return buildMux(store, store, nil, faults)
}

// buildMux builds the HTTP front end over a backend. store is non-nil only
// in single-process mode (config reload and chaos act on one store); node
// is non-nil only in cluster mode (role-aware health, cluster metrics).
// faults, when non-nil, additionally exposes the /chaos arming endpoint.
func buildMux(be backend, store *service.Store, node *cluster.Node, faults *fault.Set) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /op", func(w http.ResponseWriter, r *http.Request) {
		var wire wireOp
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		op, err := wire.decode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := be.Do(r.Context(), op)
		if err != nil {
			http.Error(w, err.Error(), statusOf(err))
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var wire []wireOp
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ops := make([]service.Op, len(wire))
		for i, wop := range wire {
			op, err := wop.decode()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			ops[i] = op
		}
		res, err := be.DoBatch(r.Context(), ops)
		if err != nil {
			http.Error(w, err.Error(), statusOf(err))
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			service.Stats
			Goroutines int `json:"goroutines"`
		}{be.Stats(), runtime.NumGoroutine()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.ContentType)
		var err error
		if node != nil {
			// Cluster mode: merge the node's cluster_* registry with every
			// shard replica store's service_* registry (distinguished by a
			// cluster_shard label) into one valid exposition, so cluster
			// deployments keep the op/batch/latency visibility of
			// single-process mode.
			parts := []metrics.LabeledRegistry{{Reg: node.Metrics()}}
			for s, reg := range node.StoreRegistries() {
				parts = append(parts, metrics.LabeledRegistry{
					Reg:   reg,
					Extra: metrics.Labels{{Name: "cluster_shard", Value: strconv.Itoa(s)}},
				})
			}
			err = metrics.WriteMultiProm(w, parts)
		} else {
			err = store.Metrics().WriteProm(w)
		}
		if err != nil {
			log.Printf("served: write metrics: %v", err)
		}
	})
	if store != nil {
		mux.HandleFunc("GET /config", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, store.Tunables())
		})
		mux.HandleFunc("POST /config", func(w http.ResponseWriter, r *http.Request) {
			tun, err := patchTunables(store, r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, tun)
		})
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if node == nil {
			fmt.Fprintln(w, "ok")
			return
		}
		writeJSON(w, node.Status())
	})
	if node != nil {
		// Per-role health: a load balancer fronting the cluster checks
		// /healthz/frontend on routing targets; an operator watching replica
		// health checks /healthz/store (503 once any replica is condemned).
		mux.HandleFunc("GET /healthz/frontend", func(w http.ResponseWriter, r *http.Request) {
			st := node.Status()
			if !st.Frontend {
				http.Error(w, "not a frontend", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("GET /healthz/store", func(w http.ResponseWriter, r *http.Request) {
			st := node.Status()
			if !st.Store {
				http.Error(w, "not a store", http.StatusServiceUnavailable)
				return
			}
			if st.Condemned > 0 {
				http.Error(w, fmt.Sprintf("%d condemned shard replicas", st.Condemned), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		})
	}
	if faults != nil {
		mux.HandleFunc("POST /chaos", func(w http.ResponseWriter, r *http.Request) {
			var wire wireRule
			if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if wire.Action == "off" {
				faults.Disarm(wire.Point)
				writeJSON(w, map[string]string{"point": wire.Point, "armed": "off"})
				return
			}
			action, err := fault.ActionOf(wire.Action)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			faults.Arm(wire.Point, fault.Rule{
				Action: action,
				After:  wire.After,
				Count:  wire.Count,
				Delay:  wire.DelayNs,
			})
			writeJSON(w, map[string]string{"point": wire.Point, "armed": wire.Action})
		})
		mux.HandleFunc("GET /chaos", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, faults.Stats())
		})
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("served: encode response: %v", err)
	}
}
