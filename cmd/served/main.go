// Command served is the HTTP/JSON front end of the free-mode serving tier
// (internal/service): a sharded key-value store whose every shard is a
// replicated log in the style of the universal construction, continuously
// audited for linearizability while it serves.
//
// Endpoints:
//
//	POST /op       {"op":"get|put|cas","key":K,"val":V,"old":O} → {"val":..,"ok":..}
//	POST /batch    [op, op, ...] → [result, result, ...]
//	GET  /stats    full service.Stats JSON (ops, latency, audit progress)
//	GET  /healthz  "ok"
//
// On SIGINT/SIGTERM the server stops accepting, drains every queued
// command, flushes the online auditor, prints a final report, and exits 0 —
// or exits 3 if any audited window had no valid linearization.
//
// Run with:
//
//	go run ./cmd/served -addr :8080 -shards 4
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 4, "number of replicated-log shards")
	workers := flag.Int("workers-per-shard", 2, "submitter workers (replicas) per shard")
	queue := flag.Int("queue", 1024, "per-shard queue depth (backpressure bound)")
	batch := flag.Int("batch", 64, "max commands grouped into one log command")
	auditOff := flag.Bool("audit-off", false, "disable the online linearizability auditor")
	auditWindow := flag.Int("audit-window", 16, "ops per audited per-key window")
	auditFrac := flag.Float64("audit-frac", 1.0, "fraction of the keyspace audited (by key hash)")
	flag.Parse()

	store := service.New(service.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxBatch:        *batch,
		Audit: service.AuditConfig{
			Disabled:       *auditOff,
			WindowOps:      *auditWindow,
			SampleFraction: *auditFrac,
		},
	})

	srv := &http.Server{Addr: *addr, Handler: newMux(store)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("served: listening on %s (%d shards × %d workers, batch %d, queue %d, audit %v)",
		*addr, *shards, *workers, *batch, *queue, !*auditOff)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("served: shutting down")
	case err := <-errCh:
		log.Fatalf("served: %v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("served: http shutdown: %v", err)
	}
	if err := store.Close(); err != nil {
		log.Printf("served: store close: %v", err)
	}

	st := store.Stats()
	log.Printf("served: final: %d ops in %d batches (mean %.1f cmds/batch)",
		st.TotalOps, st.Batches, st.BatchSize.Mean())
	for _, kind := range []string{"get", "put", "cas"} {
		l := st.Latency[kind]
		if l.Count == 0 {
			continue
		}
		log.Printf("served:   %-3s n=%-8d mean=%.0fns p50=%dns p99=%dns max=%dns",
			kind, l.Count, l.MeanNs, l.P50Ns, l.P99Ns, l.MaxNs)
	}
	a := st.Audit
	log.Printf("served: audit: %d ops sampled, %d windows checked, %d violations, %d gaps, %d dropped",
		a.SampledOps, a.WindowsChecked, a.Violations, a.Gaps, a.DroppedOps)
	if a.Violations > 0 {
		for _, s := range a.ViolationSamples {
			log.Printf("served: VIOLATION: %s", s)
		}
		os.Exit(3)
	}
}

// wireOp is the JSON shape of one command on /op and /batch.
type wireOp struct {
	Op  string `json:"op"`
	Key string `json:"key"`
	Val string `json:"val"`
	Old string `json:"old"`
}

func (w wireOp) decode() (service.Op, error) {
	kind, err := service.KindOf(w.Op)
	if err != nil {
		return service.Op{}, err
	}
	return service.Op{Kind: kind, Key: w.Key, Val: w.Val, Old: w.Old}, nil
}

// newMux builds the HTTP front end over a store. Factored out of main so
// the handlers are testable with httptest against an in-process store.
func newMux(store *service.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /op", func(w http.ResponseWriter, r *http.Request) {
		var wire wireOp
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		op, err := wire.decode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := store.Do(r.Context(), op)
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusRequestTimeout
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var wire []wireOp
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ops := make([]service.Op, len(wire))
		for i, wop := range wire {
			op, err := wop.decode()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			ops[i] = op
		}
		res, err := store.DoBatch(r.Context(), ops)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, store.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("served: encode response: %v", err)
	}
}
