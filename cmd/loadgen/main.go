// Command loadgen drives cmd/served with configurable concurrent traffic
// and verifies, at the end of the run, that the server's online
// linearizability audit stayed clean.
//
// Two pacing modes:
//
//   - closed loop (default): each worker keeps exactly one request in
//     flight, so offered load tracks service capacity;
//   - open loop (-rate N): workers offer N ops/s in aggregate regardless of
//     latency, the arrival model of a production front end.
//
// The key popularity distribution is uniform or Zipf (-zipf s > 1 skews
// toward hot keys), the op mix is configurable (-read-pct, -cas-pct, rest
// are puts), and every worker checks response sanity. Exit status is
// non-zero on any request error or audited linearizability violation.
//
// With -timeout each op carries a client deadline; expired calls (and 429
// or 504 responses) are retried up to -retries times with the same
// client-assigned op id, which the server deduplicates — the loadgen thus
// exercises the store's idempotent-retry contract under real packet timing.
// -max-p999 asserts a tail-latency ceiling over every issued op (retries
// included), the soak harness's bounded-tail gate.
//
// Run with:
//
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -workers 8 -ops 50000
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

type options struct {
	addr    string
	workers int
	ops     int64
	dur     time.Duration
	rate    float64
	keys    int
	zipf    float64
	readPct int
	casPct  int
	seed    int64
	timeout time.Duration
	retries int
	maxP999 time.Duration
	summary string
}

// runSummary is the -summary JSON artifact: the client-side ledger a
// downstream checker (scripts/metrics_smoke.sh) reconciles against the
// server's /metrics counters.
type runSummary struct {
	Issued    int64 `json:"issued"`
	Errors    int64 `json:"errors"`
	Retried   int64 `json:"retried"`
	Abandoned int64 `json:"abandoned"`
	P999Ns    int64 `json:"p999_ns"`
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "base URL of cmd/served")
	flag.IntVar(&o.workers, "workers", 8, "concurrent client workers")
	flag.Int64Var(&o.ops, "ops", 50_000, "total ops to issue (0 = run for -duration)")
	flag.DurationVar(&o.dur, "duration", 5*time.Second, "run length when -ops is 0")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop aggregate ops/s target (0 = closed loop)")
	flag.IntVar(&o.keys, "keys", 256, "keyspace size")
	flag.Float64Var(&o.zipf, "zipf", 1.2, "Zipf skew s (>1); 0 for uniform keys")
	flag.IntVar(&o.readPct, "read-pct", 60, "percent of ops that are gets")
	flag.IntVar(&o.casPct, "cas-pct", 10, "percent of ops that are cas")
	flag.Int64Var(&o.seed, "seed", 1, "base RNG seed (worker i uses seed+i)")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-op client deadline (0 = none)")
	flag.IntVar(&o.retries, "retries", 3, "retries with the same op id on deadline/429/504")
	flag.DurationVar(&o.maxP999, "max-p999", 0, "fail if overall p999 latency exceeds this (0 = off)")
	flag.StringVar(&o.summary, "summary", "", "write a JSON run summary to this path")
	flag.Parse()
	if err := run(o); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
}

// worker issues ops until the shared budget runs out, collecting its own
// latency histogram (merged after the run; workers share nothing hot).
type worker struct {
	o         *options
	id        int
	client    *http.Client
	rng       *rand.Rand
	zipf      *rand.Zipf
	issued    int64
	errors    int64
	retried   int64
	abandoned int64
	latency   [3]sim.Histogram
}

func (w *worker) key() string {
	if w.zipf != nil {
		return fmt.Sprintf("k%05d", w.zipf.Uint64())
	}
	return fmt.Sprintf("k%05d", w.rng.Intn(w.o.keys))
}

func (w *worker) op(i int64) (service.OpKind, map[string]any) {
	key := w.key()
	p := w.rng.Intn(100)
	switch {
	case p < w.o.readPct:
		return service.OpGet, map[string]any{"op": "get", "key": key}
	case p < w.o.readPct+w.o.casPct:
		return service.OpCAS, map[string]any{"op": "cas", "key": key,
			"old": "", "val": fmt.Sprintf("cas-%d", i)}
	default:
		return service.OpPut, map[string]any{"op": "put", "key": key,
			"val": fmt.Sprintf("put-%d", i)}
	}
}

// attempt posts one request, with the worker's client deadline when
// configured. retriable=true marks the outcomes (client deadline, 429
// saturation, 504 server deadline) where resending the identical op — same
// client-assigned id — is the correct reaction.
func (w *worker) attempt(buf []byte) (res service.Result, retriable bool, err error) {
	ctx := context.Background()
	if w.o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.o.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.addr+"/op", bytes.NewReader(buf))
	if err != nil {
		return res, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return res, context.Cause(ctx) != nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusGatewayTimeout:
		return res, true, fmt.Errorf("status %d", resp.StatusCode)
	default:
		return res, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, false, fmt.Errorf("decode: %w", err)
	}
	return res, false, nil
}

func (w *worker) issue(i int64) error {
	kind, body := w.op(i)
	// The op id makes retries idempotent: the server dedups a resend of an
	// op that did commit before its client's deadline fired.
	body["id"] = uint64(w.id+1)<<32 | uint64(i+1)
	buf, _ := json.Marshal(body)
	start := time.Now()
	var res service.Result
	var err error
	for try := 0; ; try++ {
		var retriable bool
		res, retriable, err = w.attempt(buf)
		if err == nil {
			break
		}
		if !retriable || try >= w.o.retries {
			if retriable {
				// Out of retries on a retriable outcome: the op may or may
				// not have committed, exactly like a crashed client. The
				// server's audit decides if the history stayed consistent.
				w.abandoned++
				w.latency[kind].Observe(time.Since(start).Nanoseconds())
				return nil
			}
			return err
		}
		w.retried++
	}
	if kind == service.OpPut && !res.OK {
		return fmt.Errorf("put returned ok=false")
	}
	w.latency[kind].Observe(time.Since(start).Nanoseconds())
	w.issued++
	return nil
}

func run(o options) error {
	transport := &http.Transport{
		MaxIdleConns:        2 * o.workers,
		MaxIdleConnsPerHost: 2 * o.workers,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Wait for the server to come up (CI starts it in the background).
	var up bool
	for i := 0; i < 50; i++ {
		if resp, err := client.Get(o.addr + "/healthz"); err == nil {
			resp.Body.Close()
			up = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !up {
		return fmt.Errorf("server at %s not reachable", o.addr)
	}

	var budget atomic.Int64
	budget.Store(o.ops)
	deadline := time.Now().Add(o.dur)
	useDeadline := o.ops == 0

	// Open-loop pacing: each worker offers rate/workers ops/s.
	var interval time.Duration
	if o.rate > 0 {
		interval = time.Duration(float64(o.workers) / o.rate * float64(time.Second))
	}

	workers := make([]*worker, o.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < o.workers; wi++ {
		rng := rand.New(rand.NewSource(o.seed + int64(wi)))
		w := &worker{o: &o, id: wi, client: client, rng: rng}
		if o.zipf > 1 && o.keys > 1 {
			w.zipf = rand.NewZipf(rng, o.zipf, 1, uint64(o.keys-1))
		}
		workers[wi] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := time.Now()
			for i := int64(0); ; i++ {
				if useDeadline {
					if time.Now().After(deadline) {
						return
					}
				} else if budget.Add(-1) < 0 {
					return
				}
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				if err := w.issue(i); err != nil {
					w.errors++
					log.Printf("loadgen: worker error: %v", err)
					if w.errors > 10 {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var issued, errs, retried, abandoned int64
	var lat [3]sim.Histogram
	for _, w := range workers {
		issued += w.issued
		errs += w.errors
		retried += w.retried
		abandoned += w.abandoned
		for k := range lat {
			lat[k].Merge(w.latency[k])
		}
	}
	var all sim.Histogram
	for k := range lat {
		all.Merge(lat[k])
	}
	fmt.Printf("loadgen: %d ops in %v = %.0f ops/s (%d workers, %d errors, %d retries, %d abandoned)\n",
		issued, elapsed.Round(time.Millisecond), float64(issued)/elapsed.Seconds(), o.workers, errs, retried, abandoned)
	for k, name := range []string{"get", "put", "cas"} {
		if lat[k].Count == 0 {
			continue
		}
		fmt.Printf("loadgen:   %-3s n=%-8d mean=%s p50=%s p99=%s p999=%s\n", name, lat[k].Count,
			time.Duration(int64(lat[k].Mean())), time.Duration(lat[k].Quantile(0.5)),
			time.Duration(lat[k].Quantile(0.99)), time.Duration(lat[k].Quantile(0.999)))
	}
	p999 := time.Duration(all.Quantile(0.999))
	fmt.Printf("loadgen: all p50=%s p99=%s p999=%s max=%s\n",
		time.Duration(all.Quantile(0.5)), time.Duration(all.Quantile(0.99)), p999, time.Duration(all.Max))

	if o.summary != "" {
		buf, err := json.MarshalIndent(runSummary{
			Issued: issued, Errors: errs, Retried: retried,
			Abandoned: abandoned, P999Ns: int64(p999),
		}, "", "  ")
		if err == nil {
			err = os.WriteFile(o.summary, append(buf, '\n'), 0o644)
		}
		if err != nil {
			return fmt.Errorf("summary: %w", err)
		}
	}

	// Pull the server's audit verdict: the run only passes if every audited
	// window of the traffic we just generated linearized.
	resp, err := client.Get(o.addr + "/stats")
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	defer resp.Body.Close()
	var stats service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return fmt.Errorf("stats decode: %w", err)
	}
	a := stats.Audit
	fmt.Printf("loadgen: server: %d ops, %d batches (mean %.1f cmds/batch)\n",
		stats.TotalOps, stats.Batches, stats.BatchSize.Mean())
	fmt.Printf("loadgen: audit: %d sampled, %d windows checked, %d violations, %d gaps, %d dropped, %d truncated\n",
		a.SampledOps, a.WindowsChecked, a.Violations, a.Gaps, a.DroppedOps, a.Truncated)
	if errs > 0 {
		return fmt.Errorf("%d request errors", errs)
	}
	if a.Violations > 0 {
		for _, s := range a.ViolationSamples {
			fmt.Printf("loadgen: VIOLATION: %s\n", s)
		}
		return fmt.Errorf("%d linearizability violations", a.Violations)
	}
	if issued == 0 {
		return fmt.Errorf("no ops issued")
	}
	if o.maxP999 > 0 && p999 > o.maxP999 {
		return fmt.Errorf("p999 latency %s exceeds -max-p999 %s", p999, o.maxP999)
	}
	fmt.Println("loadgen: OK — zero linearizability violations across all audited windows")
	return nil
}
