// Command loadgen drives cmd/served with configurable concurrent traffic
// and verifies, at the end of the run, that the server's online
// linearizability audit stayed clean.
//
// Two pacing modes:
//
//   - closed loop (default): each worker keeps exactly one request in
//     flight, so offered load tracks service capacity;
//   - open loop (-rate N): workers offer N ops/s in aggregate regardless of
//     latency, the arrival model of a production front end.
//
// The key popularity distribution is uniform or Zipf (-zipf s > 1 skews
// toward hot keys), the op mix is configurable (-read-pct, -cas-pct, rest
// are puts), and every worker checks response sanity. Exit status is
// non-zero on any request error or audited linearizability violation.
//
// With -timeout each op carries a client deadline; expired calls (and 429
// or 504 responses) are retried up to -retries times with the same
// client-assigned op id, which the server deduplicates — the loadgen thus
// exercises the store's idempotent-retry contract under real packet timing.
// -max-p999 asserts a tail-latency ceiling over every issued op (retries
// included), the soak harness's bounded-tail gate.
//
// Two transports:
//
//   - -proto http (default): one HTTP/JSON POST /op per operation, the
//     compatibility front end;
//   - -proto wire: the binary protocol of docs/PROTOCOL.md over -conns
//     pipelined connections (workers share connections round-robin, so the
//     per-connection pipeline depth is workers/conns). -batch N packs N ops
//     into each batch frame — the protocol's throughput lever. -addr is then
//     host:port of served's -wire listener, and -timeout (a client-side HTTP
//     deadline) does not apply; saturation and deadline errors still arrive
//     as typed wire errors and are retried the same way.
//
// Run with:
//
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -workers 8 -ops 50000
//	go run ./cmd/loadgen -proto wire -addr 127.0.0.1:9090 -conns 2 -batch 64
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/wire"
)

type options struct {
	addr    string
	proto   string
	conns   int
	batch   int
	workers int
	ops     int64
	dur     time.Duration
	rate    float64
	keys    int
	zipf    float64
	readPct int
	casPct  int
	seed    int64
	timeout time.Duration
	retries int
	maxP999 time.Duration
	summary string
}

// runSummary is the -summary JSON artifact: the client-side ledger a
// downstream checker (scripts/metrics_smoke.sh) reconciles against the
// server's /metrics counters.
type runSummary struct {
	Issued    int64 `json:"issued"`
	Errors    int64 `json:"errors"`
	Retried   int64 `json:"retried"`
	Abandoned int64 `json:"abandoned"`
	P999Ns    int64 `json:"p999_ns"`
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "base URL of cmd/served (-proto wire: host:port of its -wire listener)")
	flag.StringVar(&o.proto, "proto", "http", `transport: "http" (JSON per op) or "wire" (binary, pipelined)`)
	flag.IntVar(&o.conns, "conns", 2, "wire connections shared round-robin by the workers (-proto wire)")
	flag.IntVar(&o.batch, "batch", 1, "ops per wire batch frame; 1 = one op frame per op (-proto wire)")
	flag.IntVar(&o.workers, "workers", 8, "concurrent client workers")
	flag.Int64Var(&o.ops, "ops", 50_000, "total ops to issue (0 = run for -duration)")
	flag.DurationVar(&o.dur, "duration", 5*time.Second, "run length when -ops is 0")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop aggregate ops/s target (0 = closed loop)")
	flag.IntVar(&o.keys, "keys", 256, "keyspace size")
	flag.Float64Var(&o.zipf, "zipf", 1.2, "Zipf skew s (>1); 0 for uniform keys")
	flag.IntVar(&o.readPct, "read-pct", 60, "percent of ops that are gets")
	flag.IntVar(&o.casPct, "cas-pct", 10, "percent of ops that are cas")
	flag.Int64Var(&o.seed, "seed", 1, "base RNG seed (worker i uses seed+i)")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-op client deadline (0 = none)")
	flag.IntVar(&o.retries, "retries", 3, "retries with the same op id on deadline/429/504")
	flag.DurationVar(&o.maxP999, "max-p999", 0, "fail if overall p999 latency exceeds this (0 = off)")
	flag.StringVar(&o.summary, "summary", "", "write a JSON run summary to this path")
	flag.Parse()
	if o.proto != "http" && o.proto != "wire" {
		log.Fatalf(`loadgen: -proto must be "http" or "wire", got %q`, o.proto)
	}
	if o.proto == "http" && o.batch > 1 {
		log.Fatalf("loadgen: -batch needs -proto wire")
	}
	if o.conns < 1 || o.batch < 1 || o.batch > wire.MaxBatchOps {
		log.Fatalf("loadgen: -conns must be >= 1 and -batch in [1, %d]", wire.MaxBatchOps)
	}
	if err := run(o); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
}

// worker issues ops until the shared budget runs out, collecting its own
// latency histogram (merged after the run; workers share nothing hot).
type worker struct {
	o         *options
	id        int
	client    *http.Client
	conn      *wire.Conn // non-nil in -proto wire mode, shared with workers/conns others
	rng       *rand.Rand
	zipf      *rand.Zipf
	issued    int64
	errors    int64
	retried   int64
	abandoned int64
	latency   [3]sim.Histogram
}

func (w *worker) key() string {
	if w.zipf != nil {
		return fmt.Sprintf("k%05d", w.zipf.Uint64())
	}
	return fmt.Sprintf("k%05d", w.rng.Intn(w.o.keys))
}

// op draws one operation from the configured mix. The ID is the
// client-assigned idempotency token that makes retries safe: the server
// dedups a resend of an op that did commit before its client gave up on it.
func (w *worker) op(i int64) service.Op {
	id := uint64(w.id+1)<<32 | uint64(i+1)
	key := w.key()
	p := w.rng.Intn(100)
	switch {
	case p < w.o.readPct:
		return service.Op{Kind: service.OpGet, Key: key, ID: id}
	case p < w.o.readPct+w.o.casPct:
		return service.Op{Kind: service.OpCAS, Key: key, Old: "",
			Val: fmt.Sprintf("cas-%d", i), ID: id}
	default:
		return service.Op{Kind: service.OpPut, Key: key,
			Val: fmt.Sprintf("put-%d", i), ID: id}
	}
}

// kindNames maps service.OpKind to the HTTP front end's op names.
var kindNames = [3]string{service.OpGet: "get", service.OpPut: "put", service.OpCAS: "cas"}

// jsonBody renders op as the HTTP front end's wire shape (POST /op body).
func jsonBody(op service.Op) []byte {
	buf, _ := json.Marshal(map[string]any{
		"op": kindNames[op.Kind], "key": op.Key, "val": op.Val, "old": op.Old, "id": op.ID,
	})
	return buf
}

// retriableWire marks the wire errors (saturation, server deadline) where
// resending the identical op — same client-assigned id — is the correct
// reaction; wire.Error.Unwrap maps the in-band error codes back onto the
// service's typed errors, so this is the same taxonomy attempt dispatches
// on via HTTP status codes.
func retriableWire(err error) bool {
	return errors.Is(err, service.ErrSaturated) || errors.Is(err, service.ErrDeadline)
}

// attempt posts one request, with the worker's client deadline when
// configured. retriable=true marks the outcomes (client deadline, 429
// saturation, 504 server deadline) where resending the identical op — same
// client-assigned id — is the correct reaction.
func (w *worker) attempt(buf []byte) (res service.Result, retriable bool, err error) {
	ctx := context.Background()
	if w.o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.o.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.addr+"/op", bytes.NewReader(buf))
	if err != nil {
		return res, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return res, context.Cause(ctx) != nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusGatewayTimeout:
		return res, true, fmt.Errorf("status %d", resp.StatusCode)
	default:
		return res, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, false, fmt.Errorf("decode: %w", err)
	}
	return res, false, nil
}

func (w *worker) issue(i int64) error {
	op := w.op(i)
	var buf []byte
	if w.conn == nil {
		buf = jsonBody(op)
	}
	start := time.Now()
	var res service.Result
	var err error
	for try := 0; ; try++ {
		var retriable bool
		if w.conn != nil {
			res, err = w.conn.Do(op)
			retriable = err != nil && retriableWire(err)
		} else {
			res, retriable, err = w.attempt(buf)
		}
		if err == nil {
			break
		}
		if !retriable || try >= w.o.retries {
			if retriable {
				// Out of retries on a retriable outcome: the op may or may
				// not have committed, exactly like a crashed client. The
				// server's audit decides if the history stayed consistent.
				w.abandoned++
				w.latency[op.Kind].Observe(time.Since(start).Nanoseconds())
				return nil
			}
			return err
		}
		w.retried++
	}
	if op.Kind == service.OpPut && !res.OK {
		return fmt.Errorf("put returned ok=false")
	}
	w.latency[op.Kind].Observe(time.Since(start).Nanoseconds())
	w.issued++
	return nil
}

// issueBatch sends ops as one wire batch frame, retrying the whole frame —
// same ids — on retriable errors (DoBatch is all-or-error, so the frame is
// the retry unit). results is the reused decode slice, returned for the
// next call. Latency is observed per op at frame granularity: every op in
// the frame shares the frame's round-trip time, which is what an end client
// batching its traffic actually experiences.
func (w *worker) issueBatch(ops []service.Op, results []service.Result) ([]service.Result, error) {
	start := time.Now()
	var err error
	for try := 0; ; try++ {
		results, err = w.conn.DoBatch(ops, results[:0])
		if err == nil {
			break
		}
		if !retriableWire(err) || try >= w.o.retries {
			if retriableWire(err) {
				w.abandoned += int64(len(ops))
				el := time.Since(start).Nanoseconds()
				for _, op := range ops {
					w.latency[op.Kind].Observe(el)
				}
				return results, nil
			}
			return results, err
		}
		w.retried++
	}
	el := time.Since(start).Nanoseconds()
	for i, op := range ops {
		if op.Kind == service.OpPut && !results[i].OK {
			return results, fmt.Errorf("put returned ok=false")
		}
		w.latency[op.Kind].Observe(el)
	}
	w.issued += int64(len(ops))
	return results, nil
}

func run(o options) error {
	transport := &http.Transport{
		MaxIdleConns:        2 * o.workers,
		MaxIdleConnsPerHost: 2 * o.workers,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Wait for the server to come up (CI starts it in the background), then
	// in wire mode open the shared connection pool.
	var conns []*wire.Conn
	if o.proto == "wire" {
		var err error
		for i := 0; i < 50; i++ {
			var c *wire.Conn
			if c, err = wire.Dial(o.addr); err == nil {
				conns = append(conns, c)
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if len(conns) == 0 {
			return fmt.Errorf("wire server at %s not reachable: %w", o.addr, err)
		}
		for len(conns) < o.conns {
			c, err := wire.Dial(o.addr)
			if err != nil {
				return fmt.Errorf("wire dial: %w", err)
			}
			conns = append(conns, c)
		}
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
	} else {
		var up bool
		for i := 0; i < 50; i++ {
			if resp, err := client.Get(o.addr + "/healthz"); err == nil {
				resp.Body.Close()
				up = true
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if !up {
			return fmt.Errorf("server at %s not reachable", o.addr)
		}
	}

	var budget atomic.Int64
	budget.Store(o.ops)
	deadline := time.Now().Add(o.dur)
	useDeadline := o.ops == 0
	// take claims up to n ops from the shared budget (the batch path claims
	// a whole frame at once, so the last frame of a run may be short).
	take := func(n int64) int64 {
		rem := budget.Add(-n)
		switch {
		case rem >= 0:
			return n
		case rem > -n:
			return n + rem
		default:
			return 0
		}
	}

	// Open-loop pacing: each worker offers rate/workers ops/s, batch frames
	// counting for their op count.
	var interval time.Duration
	if o.rate > 0 {
		interval = time.Duration(float64(o.workers) * float64(o.batch) / o.rate * float64(time.Second))
	}

	workers := make([]*worker, o.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < o.workers; wi++ {
		rng := rand.New(rand.NewSource(o.seed + int64(wi)))
		w := &worker{o: &o, id: wi, client: client, rng: rng}
		if len(conns) > 0 {
			w.conn = conns[wi%len(conns)]
		}
		if o.zipf > 1 && o.keys > 1 {
			w.zipf = rand.NewZipf(rng, o.zipf, 1, uint64(o.keys-1))
		}
		workers[wi] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := time.Now()
			pace := func() {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
			}
			fail := func(err error) bool {
				w.errors++
				log.Printf("loadgen: worker error: %v", err)
				return w.errors > 10
			}
			if o.batch > 1 {
				ops := make([]service.Op, 0, o.batch)
				results := make([]service.Result, 0, o.batch)
				for i := int64(0); ; {
					n := int64(o.batch)
					if useDeadline {
						if time.Now().After(deadline) {
							return
						}
					} else if n = take(n); n == 0 {
						return
					}
					pace()
					ops = ops[:0]
					for j := int64(0); j < n; j++ {
						ops = append(ops, w.op(i))
						i++
					}
					var err error
					if results, err = w.issueBatch(ops, results); err != nil && fail(err) {
						return
					}
				}
			}
			for i := int64(0); ; i++ {
				if useDeadline {
					if time.Now().After(deadline) {
						return
					}
				} else if take(1) == 0 {
					return
				}
				pace()
				if err := w.issue(i); err != nil && fail(err) {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var issued, errs, retried, abandoned int64
	var lat [3]sim.Histogram
	for _, w := range workers {
		issued += w.issued
		errs += w.errors
		retried += w.retried
		abandoned += w.abandoned
		for k := range lat {
			lat[k].Merge(w.latency[k])
		}
	}
	var all sim.Histogram
	for k := range lat {
		all.Merge(lat[k])
	}
	fmt.Printf("loadgen: %d ops in %v = %.0f ops/s (%d workers, %d errors, %d retries, %d abandoned)\n",
		issued, elapsed.Round(time.Millisecond), float64(issued)/elapsed.Seconds(), o.workers, errs, retried, abandoned)
	for k, name := range []string{"get", "put", "cas"} {
		if lat[k].Count == 0 {
			continue
		}
		fmt.Printf("loadgen:   %-3s n=%-8d mean=%s p50=%s p99=%s p999=%s\n", name, lat[k].Count,
			time.Duration(int64(lat[k].Mean())), time.Duration(lat[k].Quantile(0.5)),
			time.Duration(lat[k].Quantile(0.99)), time.Duration(lat[k].Quantile(0.999)))
	}
	p999 := time.Duration(all.Quantile(0.999))
	fmt.Printf("loadgen: all p50=%s p99=%s p999=%s max=%s\n",
		time.Duration(all.Quantile(0.5)), time.Duration(all.Quantile(0.99)), p999, time.Duration(all.Max))

	if o.summary != "" {
		buf, err := json.MarshalIndent(runSummary{
			Issued: issued, Errors: errs, Retried: retried,
			Abandoned: abandoned, P999Ns: int64(p999),
		}, "", "  ")
		if err == nil {
			err = os.WriteFile(o.summary, append(buf, '\n'), 0o644)
		}
		if err != nil {
			return fmt.Errorf("summary: %w", err)
		}
	}

	// Pull the server's audit verdict: the run only passes if every audited
	// window of the traffic we just generated linearized. In wire mode,
	// drain every connection first (the pipeline fence of PROTOCOL.md §3.5)
	// so the stats snapshot is taken after our last op was answered.
	var stats service.Stats
	if o.proto == "wire" {
		for _, c := range conns {
			if err := c.Drain(); err != nil {
				return fmt.Errorf("drain: %w", err)
			}
		}
		if err := conns[0].Stats(&stats); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	} else {
		resp, err := client.Get(o.addr + "/stats")
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			return fmt.Errorf("stats decode: %w", err)
		}
	}
	a := stats.Audit
	fmt.Printf("loadgen: server: %d ops, %d batches (mean %.1f cmds/batch)\n",
		stats.TotalOps, stats.Batches, stats.BatchSize.Mean())
	fmt.Printf("loadgen: audit: %d sampled, %d windows checked, %d violations, %d gaps, %d dropped, %d truncated\n",
		a.SampledOps, a.WindowsChecked, a.Violations, a.Gaps, a.DroppedOps, a.Truncated)
	if errs > 0 {
		return fmt.Errorf("%d request errors", errs)
	}
	if a.Violations > 0 {
		for _, s := range a.ViolationSamples {
			fmt.Printf("loadgen: VIOLATION: %s\n", s)
		}
		return fmt.Errorf("%d linearizability violations", a.Violations)
	}
	if issued == 0 {
		return fmt.Errorf("no ops issued")
	}
	if o.maxP999 > 0 && p999 > o.maxP999 {
		return fmt.Errorf("p999 latency %s exceeds -max-p999 %s", p999, o.maxP999)
	}
	fmt.Println("loadgen: OK — zero linearizability violations across all audited windows")
	return nil
}
