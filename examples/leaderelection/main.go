// Leaderelection: crash-tolerant leader arbitration built directly from the
// paper's arbiter object type (Figure 4).
//
// A primary site (the arbiter's owners) and a set of standby sites (its
// guests) race to claim leadership after a failover event. The arbiter's
// guarantees map exactly onto what a failover protocol needs:
//
//   - agreement: all sites observe the same winning side;
//   - validity: the standbys can only win if a standby actually ran, and the
//     primary side can only win if a primary actually ran;
//   - termination: one correct primary suffices, and an all-standby failover
//     (primaries dead before announcing) terminates too.
//
// The example then cascades two arbiters — region arbitration feeding global
// arbitration — mirroring how Figure 5 chains ARBITER[1..m-1].
//
// Run with:
//
//	go run ./examples/leaderelection
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("scenario 1: primaries react first — primary side wins")
	if err := failover(true, nil); err != nil {
		return err
	}
	fmt.Println("\nscenario 2: primaries never start — standbys win")
	if err := failover(false, nil); err != nil {
		return err
	}
	fmt.Println("\nscenario 3: one primary crashes mid-arbitration, the other carries on")
	if err := failover(true, map[int]int64{0: 1}); err != nil {
		return err
	}
	return nil
}

// failover runs one arbitration between primaries {0,1} and standbys {2,3,4}.
// When the primaries participate, they get a head start (they detect the
// failover first), so the arbitration resolves in their favour; validity
// guarantees standbys cannot win without a standby running.
func failover(primariesRun bool, crashes map[int]int64) error {
	const n = 5
	var policy core.Policy = core.Random(7)
	if primariesRun {
		// Primaries react first: script their opening steps, then go random.
		policy = &sched.Script{Seq: []int{0, 1, 0, 1, 0, 1}, Then: sched.NewRandom(7)}
	}
	arb := core.NewArbiter("failover", []int{0, 1})
	if crashes != nil {
		policy = &sched.CrashAt{Inner: policy, At: crashes}
	}
	run := core.NewRun(n, policy)
	if primariesRun {
		for id := 0; id < 2; id++ {
			run.Spawn(id, func(p *core.Proc) {
				p.SetResult(arb.Arbitrate(p, core.Owner))
			})
		}
	}
	for id := 2; id < n; id++ {
		run.Spawn(id, func(p *core.Proc) {
			p.SetResult(arb.Arbitrate(p, core.Guest))
		})
	}
	res := run.Execute(200_000)

	var winner core.Role
	for id := 0; id < n; id++ {
		if res.HasValue[id] {
			winner = res.Values[id].(core.Role)
			break
		}
	}
	fmt.Printf("  leadership goes to the %v side\n", winner)
	for id := 0; id < n; id++ {
		side := "standby"
		if id < 2 {
			side = "primary"
		}
		if !primariesRun && id < 2 {
			fmt.Printf("  p%d (%s): never started\n", id, side)
			continue
		}
		fmt.Printf("  p%d (%s): %v", id, side, res.Status[id])
		if res.HasValue[id] {
			fmt.Printf(", sees winner=%v", res.Values[id])
			if res.Values[id].(core.Role) != winner {
				return fmt.Errorf("agreement violated")
			}
		}
		fmt.Println()
	}
	return nil
}
