// Replicatedlog: the universal construction as a live key-value service.
//
// Herlihy's universality result ([7], leaned on in Section 3.2 of the
// paper) says any object with a sequential specification can be built from
// consensus objects and registers. internal/service runs that construction
// in free mode (real goroutines, per internal/memory): every shard is a
// replicated log of write-once consensus cells, submitter workers batch
// client commands into log positions, and an online auditor continuously
// checks sampled per-key windows of the live history against the paper's
// correctness condition — linearizability (Herlihy & Wing [9]).
//
// This example stands up a 4-shard store, drives it from several concurrent
// clients (including a batch submit), reads everything back, and prints the
// serving and audit statistics.
//
// Run with:
//
//	go run ./examples/replicatedlog
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const clients, cmds = 4, 3
	ctx := context.Background()

	// A 4-shard store: four independent replicated logs, each decided by
	// two submitter workers (two universal.Replica instances contending on
	// the log), commands grouped up to 8 per log position. Audit windows
	// close every 8 ops per key.
	store := service.New(service.Config{
		Shards:          4,
		WorkersPerShard: 2,
		MaxBatch:        8,
		Audit:           service.AuditConfig{WindowOps: 8},
	})

	// Concurrent clients, each writing its own keys — real goroutines, the
	// free-mode counterpart of the controlled-mode replicas this example
	// used to schedule by hand.
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for seq := 0; seq < cmds; seq++ {
				key := fmt.Sprintf("key-%d-%d", c, seq)
				if err := store.Put(ctx, key, fmt.Sprintf("v%d", seq)); err != nil {
					log.Printf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()

	// Batch submit: one call, grouped per shard by the workers' grant
	// windows, all results index-aligned.
	var ops []service.Op
	for c := 0; c < clients; c++ {
		for seq := 0; seq < cmds; seq++ {
			ops = append(ops, service.Op{Kind: service.OpGet, Key: fmt.Sprintf("key-%d-%d", c, seq)})
		}
	}
	results, err := store.DoBatch(ctx, ops)
	if err != nil {
		return err
	}

	fmt.Printf("replicated store after %d commands from %d clients:\n", clients*cmds, clients)
	lines := make([]string, 0, len(results))
	for i, res := range results {
		if !res.OK {
			return fmt.Errorf("%s missing", ops[i].Key)
		}
		lines = append(lines, fmt.Sprintf("  %s = %s", ops[i].Key, res.Val))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}

	if err := store.Close(); err != nil {
		return err
	}
	st := store.Stats()
	fmt.Printf("served %d ops in %d log commands across %d shards (mean %.1f cmds/batch)\n",
		st.TotalOps, st.Batches, st.Shards, st.BatchSize.Mean())
	fmt.Printf("online audit: %d windows checked, %d violations\n",
		st.Audit.WindowsChecked, st.Audit.Violations)
	if st.Audit.Violations > 0 {
		return fmt.Errorf("linearizability violations: %v", st.Audit.ViolationSamples)
	}
	fmt.Println("every client's commands committed; the audited history is linearizable.")
	return nil
}
