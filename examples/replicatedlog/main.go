// Replicatedlog: a replicated key-value store driven by the universal
// construction over group-based asymmetric consensus cells — Herlihy's
// universality result ([7], leaned on in Section 3.2 of the paper) combined
// with the paper's Figure 5 object.
//
// Four replicas (two privileged, two background) apply Put commands through
// a shared log. Every log position is decided by a fresh group-consensus
// instance, so the store inherits the asymmetric progress condition: as long
// as a correct privileged replica participates in a position, that position
// commits for everyone — and when the privileged replicas are silent, the
// background replicas still make progress on their own.
//
// Run with:
//
//	go run ./examples/replicatedlog
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/sched"
	"repro/internal/universal"
)

// Put is a uniquely-tagged store command.
type Put struct {
	Replica int
	Seq     int
	Key     string
	Val     string
}

// store is an immutable key-value state (copied on apply, as the replica
// state machine requires a pure function).
type store map[string]string

func apply(s store, c Put) store {
	next := make(store, len(s)+1)
	for k, v := range s {
		next[k] = v
	}
	if c.Key != "" { // noop commands have an empty key
		next[c.Key] = c.Val
	}
	return next
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, x, cmds = 4, 2, 3

	logObj := universal.NewLog[Put](func(i int) universal.Proposer[Put] {
		gc, err := group.New[Put](fmt.Sprintf("cell-%d", i), n, x)
		if err != nil {
			panic(err)
		}
		return universal.GroupCell[Put]{ProposeFn: gc.Propose}
	})

	finals := make([]store, n)
	run := core.NewRun(n, core.Random(11))
	run.SpawnAll(func(p *core.Proc) {
		rep := universal.NewReplica[store, Put](logObj, store{}, apply)
		for seq := 0; seq < cmds; seq++ {
			key := fmt.Sprintf("key-%d-%d", p.ID(), seq)
			rep.Exec(p, Put{Replica: p.ID(), Seq: seq, Key: key, Val: fmt.Sprintf("v%d", seq)})
		}
		finals[p.ID()] = rep.State()
	})
	res := run.Execute(5_000_000)

	for id := 0; id < n; id++ {
		if res.Status[id] != sched.Done {
			return fmt.Errorf("replica %d: %v", id, res.Status[id])
		}
	}

	// Bring a fresh read-only replica fully up to date and print the store.
	reader := core.NewRun(1, core.RoundRobin())
	var final store
	reader.Spawn(0, func(p *core.Proc) {
		rep := universal.NewReplica[store, Put](logObj, store{}, apply)
		final = rep.Sync(p, n*cmds, Put{Replica: -1})
	})
	reader.Execute(1_000_000)

	fmt.Printf("replicated store after %d commands from %d replicas:\n", n*cmds, n)
	keys := make([]string, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s = %s\n", k, final[k])
	}
	if len(final) != n*cmds {
		return fmt.Errorf("store has %d keys, want %d", len(final), n*cmds)
	}
	fmt.Println("every replica's commands committed; the log is identical at all replicas.")
	return nil
}
