// Quickstart: six processes in three ordered groups agree on one value with
// the group-based asymmetric progress guarantee of the paper (Figure 5) —
// then the same objects go to work in free mode, serving a sharded
// key-value store (internal/service) with online linearizability auditing.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Six processes, groups of two: group 0 = {0,1} is the most important.
	gc, err := core.NewGroupConsensus[string]("quickstart", 6, 2)
	if err != nil {
		return err
	}

	// A controlled run under perfect contention (round-robin): every shared
	// access is one scheduled step, so the execution is reproducible.
	run := core.NewRun(6, core.RoundRobin())
	run.SpawnAll(func(p *core.Proc) {
		decision, err := gc.Propose(p, fmt.Sprintf("plan-%d", p.ID()))
		if err != nil {
			panic(err)
		}
		p.SetResult(decision)
	})
	res := run.Execute(1_000_000)

	fmt.Println("group-based asymmetric consensus, 6 processes / 3 groups:")
	for id := 0; id < 6; id++ {
		fmt.Printf("  p%d proposed %q, decided %q (%v, %d steps)\n",
			id, fmt.Sprintf("plan-%d", id), res.Values[id], res.Status[id], res.Steps[id])
	}

	first := res.Values[0]
	for id := 1; id < 6; id++ {
		if res.Values[id] != first {
			return fmt.Errorf("agreement violated: %v", res.Values)
		}
	}
	fmt.Println("agreement holds; the decision is a proposed value.")

	// The serving tier: the same consensus-and-registers toolkit, now as a
	// live store on real goroutines. Two shards (two replicated logs), each
	// decided by two submitter workers batching commands per grant window;
	// an online auditor checks sampled per-key windows for linearizability
	// while traffic is served.
	store := service.New(service.Config{Shards: 2, WorkersPerShard: 2, MaxBatch: 4,
		Audit: service.AuditConfig{WindowOps: 4}})
	ctx := context.Background()
	if err := store.Put(ctx, "decision", first.(string)); err != nil {
		return err
	}
	if ok, err := store.CAS(ctx, "decision", first.(string), "ratified:"+first.(string)); err != nil || !ok {
		return fmt.Errorf("cas decision: ok=%v err=%v", ok, err)
	}
	val, _, err := store.Get(ctx, "decision")
	if err != nil {
		return err
	}
	if err := store.Close(); err != nil {
		return err
	}
	st := store.Stats()
	fmt.Printf("serving tier: %q stored across %d shards; %d ops, audit %d windows, %d violations\n",
		val, st.Shards, st.TotalOps, st.Audit.WindowsChecked, st.Audit.Violations)
	if st.Audit.Violations > 0 {
		return fmt.Errorf("linearizability violations: %v", st.Audit.ViolationSamples)
	}
	return nil
}
