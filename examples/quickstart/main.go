// Quickstart: six processes in three ordered groups agree on one value with
// the group-based asymmetric progress guarantee of the paper (Figure 5).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Six processes, groups of two: group 0 = {0,1} is the most important.
	gc, err := core.NewGroupConsensus[string]("quickstart", 6, 2)
	if err != nil {
		return err
	}

	// A controlled run under perfect contention (round-robin): every shared
	// access is one scheduled step, so the execution is reproducible.
	run := core.NewRun(6, core.RoundRobin())
	run.SpawnAll(func(p *core.Proc) {
		decision, err := gc.Propose(p, fmt.Sprintf("plan-%d", p.ID()))
		if err != nil {
			panic(err)
		}
		p.SetResult(decision)
	})
	res := run.Execute(1_000_000)

	fmt.Println("group-based asymmetric consensus, 6 processes / 3 groups:")
	for id := 0; id < 6; id++ {
		fmt.Printf("  p%d proposed %q, decided %q (%v, %d steps)\n",
			id, fmt.Sprintf("plan-%d", id), res.Values[id], res.Status[id], res.Steps[id])
	}

	first := res.Values[0]
	for id := 1; id < 6; id++ {
		if res.Values[id] != first {
			return fmt.Errorf("agreement violated: %v", res.Values)
		}
	}
	fmt.Println("agreement holds; the decision is a proposed value.")
	return nil
}
