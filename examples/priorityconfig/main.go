// Priorityconfig: configuration rollout with asymmetric progress — the
// paper's first motivation ("some processes are more important than others
// from the object liveness point of view", Section 1.2).
//
// An operations team (two privileged coordinators, group 0) and four
// background agents (groups 1 and 2) must agree on which configuration to
// roll out. The group-based asymmetric consensus object gives the ops team
// the strongest position: if any correct ops coordinator participates,
// everyone decides. But the system is NOT blocked on the ops team — when the
// ops team is silent, the background agents decide among themselves, because
// the first *participating* group drives termination.
//
// The example plays three scenarios:
//
//  1. everyone participates — the ops team's proposal wins the arbitration;
//  2. the ops team is silent — the agents still decide (this is exactly what
//     the naive "wait for the privileged set" solution cannot do);
//  3. one ops coordinator crashes mid-protocol — the survivor drives
//     everyone to a decision.
//
// Run with:
//
//	go run ./examples/priorityconfig
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
)

const n = 6

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("scenario 1: full participation")
	if err := scenario([]int{0, 1, 2, 3, 4, 5}, nil); err != nil {
		return err
	}
	fmt.Println("\nscenario 2: ops team silent — agents must not block")
	if err := scenario([]int{2, 3, 4, 5}, nil); err != nil {
		return err
	}
	fmt.Println("\nscenario 3: ops coordinator 0 crashes after 2 steps")
	if err := scenario([]int{0, 1, 2, 3, 4, 5}, map[int]int64{0: 2}); err != nil {
		return err
	}
	return nil
}

func scenario(participants []int, crashes map[int]int64) error {
	// Groups: ops = {0,1}; agents = {2,3}, {4,5}.
	gc, err := core.NewGroupConsensusWithGroups[string]("cfg",
		[][]int{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		return err
	}

	var policy core.Policy = core.Random(42)
	if crashes != nil {
		policy = &sched.CrashAt{Inner: sched.NewRandom(42), At: crashes}
	}
	run := core.NewRun(n, policy)
	for _, id := range participants {
		run.Spawn(id, func(p *core.Proc) {
			cfg := fmt.Sprintf("config-v%d", p.ID())
			decision, err := gc.Propose(p, cfg)
			if err != nil {
				panic(err)
			}
			p.SetResult(decision)
		})
	}
	res := run.Execute(1_000_000)

	var decision string
	for _, id := range participants {
		if res.HasValue[id] {
			decision = res.Values[id].(string)
			break
		}
	}
	fmt.Printf("  rolled out: %q\n", decision)
	for _, id := range participants {
		role := "agent"
		if id < 2 {
			role = "ops"
		}
		switch res.Status[id] {
		case sched.Done:
			fmt.Printf("  p%d (%s): decided %q\n", id, role, res.Values[id])
		default:
			fmt.Printf("  p%d (%s): %v\n", id, role, res.Status[id])
		}
	}
	// Cross-check agreement among deciders.
	for _, id := range participants {
		if res.HasValue[id] && res.Values[id].(string) != decision {
			return fmt.Errorf("agreement violated: %v", res.Values)
		}
	}
	return nil
}
