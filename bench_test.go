// Package repro_bench is the benchmark harness: one benchmark family per
// experiment table of EXPERIMENTS.md (P1-P4 performance tables plus the
// cost side of E2/E4/E10). Controlled-mode benchmarks report steps/op — the
// paper's cost model is shared-memory events, and step counts are exactly
// reproducible — alongside wall-clock ns/op; free-mode benchmarks measure
// the raw primitives on real goroutines.
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro_bench

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/common2"
	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/group"
	"repro/internal/hierarchy"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/universal"
)

func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// --- P1: arbiter latency ---------------------------------------------------

func BenchmarkArbiter(b *testing.B) {
	for _, shape := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 4}, {2, 8}} {
		ocnt, gcnt := shape[0], shape[1]
		n := ocnt + gcnt
		b.Run(fmt.Sprintf("owners=%d/guests=%d", ocnt, gcnt), func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				arb := arbiter.New("arb", consensus.NewWaitFree[bool]("xc", allIDs(ocnt)))
				r := sched.NewRun(n, &sched.RoundRobin{})
				for id := 0; id < ocnt; id++ {
					r.Spawn(id, func(p *sched.Proc) { arb.Arbitrate(p, arbiter.Owner) })
				}
				for id := ocnt; id < n; id++ {
					r.Spawn(id, func(p *sched.Proc) { arb.Arbitrate(p, arbiter.Guest) })
				}
				res := r.Execute(100000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// --- P2: group consensus vs baselines --------------------------------------

func BenchmarkGroupConsensus(b *testing.B) {
	for _, shape := range [][2]int{{2, 1}, {4, 2}, {6, 2}, {6, 3}, {9, 3}, {12, 4}, {16, 4}} {
		n, x := shape[0], shape[1]
		b.Run(fmt.Sprintf("n=%d/x=%d", n, x), func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				gc, err := group.New[int]("gc", n, x)
				if err != nil {
					b.Fatal(err)
				}
				r := sched.NewRun(n, &sched.RoundRobin{})
				r.SpawnAll(func(p *sched.Proc) {
					if _, err := gc.Propose(p, p.ID()); err != nil {
						panic(err)
					}
				})
				res := r.Execute(1000000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkGroupVsFlatCAS compares the Figure 5 object against the flat
// wait-free CAS consensus baseline: the price of asymmetric progress over
// x-port primitives relative to an unrestricted universal primitive.
func BenchmarkGroupVsFlatCAS(b *testing.B) {
	const n = 6
	b.Run("flat-cas", func(b *testing.B) {
		var totalSteps int64
		for i := 0; i < b.N; i++ {
			c := consensus.NewWaitFree[int]("c", allIDs(n))
			r := sched.NewRun(n, &sched.RoundRobin{})
			r.SpawnAll(func(p *sched.Proc) { c.Propose(p, p.ID()) })
			res := r.Execute(100000)
			totalSteps += res.TotalSteps
		}
		b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
	})
	b.Run("group-x2", func(b *testing.B) {
		var totalSteps int64
		for i := 0; i < b.N; i++ {
			gc, err := group.New[int]("gc", n, 2)
			if err != nil {
				b.Fatal(err)
			}
			r := sched.NewRun(n, &sched.RoundRobin{})
			r.SpawnAll(func(p *sched.Proc) {
				if _, err := gc.Propose(p, p.ID()); err != nil {
					panic(err)
				}
			})
			res := r.Execute(1000000)
			totalSteps += res.TotalSteps
		}
		b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
	})
	// The strawman from the Section 6 introduction: a predefined group X
	// decides, everyone else waits. Same step shape as group consensus when
	// X participates — but it blocks forever when X is silent (that case is
	// the E6 group-wait candidate, not benchmarkable).
	b.Run("naive-wait-for-x", func(b *testing.B) {
		var totalSteps int64
		for i := 0; i < b.N; i++ {
			c := hierarchy.NewGroupWaitCandidate[int]("naive", n)
			r := sched.NewRun(n, &sched.RoundRobin{})
			r.SpawnAll(func(p *sched.Proc) { c.Propose(p, p.ID()) })
			res := r.Execute(100000)
			totalSteps += res.TotalSteps
		}
		b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
	})
}

// --- P3: obstruction-free consensus, solo vs contended ----------------------

func BenchmarkObstructionFree(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("solo/n=%d", n), func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				c := consensus.NewObstructionFree[int]("of", allIDs(n))
				r := sched.NewRun(n, sched.Solo{ID: 0})
				r.Spawn(0, func(p *sched.Proc) { c.Propose(p, 1) })
				res := r.Execute(1000000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
		b.Run(fmt.Sprintf("contended-then-solo/n=%d", n), func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				c := consensus.NewObstructionFree[int]("of", allIDs(n))
				r := sched.NewRun(n, &sched.SoloAfter{Inner: &sched.RoundRobin{}, After: 60, ID: 0})
				r.SpawnAll(func(p *sched.Proc) { c.Propose(p, p.ID()) })
				res := r.Execute(1000000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkGatedObject measures the (y, x)-live gate: wait-free ports pay
// O(1); a lone guest pays the quiescence window.
func BenchmarkGatedObject(b *testing.B) {
	for _, shape := range [][2]int{{3, 2}, {5, 4}, {9, 8}} {
		n, x := shape[0], shape[1]
		b.Run(fmt.Sprintf("y=%d/x=%d", n, x), func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				g := consensus.NewGated[int]("g", allIDs(n), allIDs(x))
				r := sched.NewRun(n, &sched.RoundRobin{})
				r.SpawnAll(func(p *sched.Proc) { g.Propose(p, p.ID()) })
				res := r.Execute(1000000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// --- E4 cost: consensus from an (x+1, x)-live object ------------------------

func BenchmarkHierarchyConstruction(b *testing.B) {
	for _, x := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("x=%d", x), func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				c := hierarchy.NewConsensusFromGated[int]("t3", x)
				r := sched.NewRun(x+1, &sched.RoundRobin{})
				r.SpawnAll(func(p *sched.Proc) { c.Propose(p, p.ID()) })
				res := r.Execute(1000000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// --- P4: explorer throughput -------------------------------------------------

func BenchmarkExplore(b *testing.B) {
	b.Run("gated", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			g, err := explore.Explore(explore.GatedModel{}, []int{0, 1}, 100000)
			if err != nil {
				b.Fatal(err)
			}
			states = g.Size()
		}
		b.ReportMetric(float64(states), "states")
	})
	b.Run("of-2rounds", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			g, err := explore.Explore(explore.OFModel{Rounds: 2}, []int{0, 1}, 2000000)
			if err != nil {
				b.Fatal(err)
			}
			states = g.Size()
		}
		b.ReportMetric(float64(states), "states")
	})
	b.Run("tas3", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			g, err := explore.Explore(explore.TASModel{Procs: 3}, []int{0, 1, 1}, 2000000)
			if err != nil {
				b.Fatal(err)
			}
			states = g.Size()
		}
		b.ReportMetric(float64(states), "states")
	})
}

// --- E10 cost: universal construction ---------------------------------------

func BenchmarkUniversal(b *testing.B) {
	type cmd struct{ Proc, Seq int }
	for _, cfg := range []struct {
		name  string
		n     int
		group bool
	}{
		{"waitfree-cells/n=3", 3, false},
		{"waitfree-cells/n=6", 6, false},
		{"group-cells/n=6", 6, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			const k = 2
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				var log *universal.Log[cmd]
				if cfg.group {
					log = universal.NewLog[cmd](func(i int) universal.Proposer[cmd] {
						gc, err := group.New[cmd](fmt.Sprintf("c%d", i), cfg.n, 2)
						if err != nil {
							panic(err)
						}
						return universal.GroupCell[cmd]{ProposeFn: gc.Propose}
					})
				} else {
					log = universal.NewLog[cmd](func(i int) universal.Proposer[cmd] {
						return consensus.NewWaitFree[cmd](fmt.Sprintf("c%d", i), allIDs(cfg.n))
					})
				}
				r := sched.NewRun(cfg.n, &sched.RoundRobin{})
				r.SpawnAll(func(p *sched.Proc) {
					rep := universal.NewReplica[int, cmd](log, 0, func(s int, c cmd) int { return s + 1 })
					for seq := 0; seq < k; seq++ {
						rep.Exec(p, cmd{Proc: p.ID(), Seq: seq})
					}
				})
				res := r.Execute(10000000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N)/float64(cfg.n*2), "steps/cmd")
		})
	}
}

// --- Free-mode primitives: raw atomics on real goroutines -------------------

func BenchmarkFreeModePrimitives(b *testing.B) {
	b.Run("register-read", func(b *testing.B) {
		reg := memory.NewRegister("r", 0)
		p := sched.FreeProc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.Read(p)
		}
	})
	b.Run("register-write", func(b *testing.B) {
		reg := memory.NewRegister("r", 0)
		p := sched.FreeProc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.Write(p, i)
		}
	})
	b.Run("counter-faa", func(b *testing.B) {
		c := memory.NewCounter("c")
		p := sched.FreeProc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.FetchAdd(p, 1)
		}
	})
	b.Run("counter-faa-parallel", func(b *testing.B) {
		c := memory.NewCounter("c")
		b.RunParallel(func(pb *testing.PB) {
			p := sched.FreeProc(0)
			for pb.Next() {
				c.FetchAdd(p, 1)
			}
		})
	})
	b.Run("once-propose-parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			p := sched.FreeProc(0)
			for pb.Next() {
				o := memory.NewOnce[int]("o")
				o.Propose(p, 1)
			}
		})
	})
}

// BenchmarkFreeModeConsensus measures full consensus objects on real
// goroutines: n goroutines race one object per iteration.
func BenchmarkFreeModeConsensus(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("waitfree/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := consensus.NewWaitFree[int]("c", allIDs(n))
				var wg sync.WaitGroup
				for id := 0; id < n; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						c.Propose(sched.FreeProc(id), id)
					}(id)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkCommitAdopt measures the register-only agreement building block.
func BenchmarkCommitAdopt(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				ca := consensus.NewCommitAdopt[int]("ca", allIDs(n))
				r := sched.NewRun(n, &sched.RoundRobin{})
				r.SpawnAll(func(p *sched.Proc) { ca.Run(p, p.ID()) })
				res := r.Execute(100000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkCommon2 measures the 2-process consensus constructions.
func BenchmarkCommon2(b *testing.B) {
	type proposer interface {
		Propose(p *sched.Proc, v int) int
	}
	objs := map[string]func() proposer{
		"tas":   func() proposer { return common2.NewTASConsensus2[int]("t", 0, 1) },
		"swap":  func() proposer { return common2.NewSwapConsensus2[int]("s", 0, 1) },
		"queue": func() proposer { return common2.NewQueueConsensus2[int]("q", 0, 1) },
		"stack": func() proposer { return common2.NewStackConsensus2[int]("st", 0, 1) },
	}
	for name, mk := range objs {
		b.Run(name, func(b *testing.B) {
			var totalSteps int64
			for i := 0; i < b.N; i++ {
				c := mk()
				r := sched.NewRun(2, &sched.RoundRobin{})
				r.SpawnAll(func(p *sched.Proc) { c.Propose(p, p.ID()) })
				res := r.Execute(10000)
				totalSteps += res.TotalSteps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkSchedulerOverhead isolates the controlled-mode step machinery.
func BenchmarkSchedulerOverhead(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := sched.NewRun(n, &sched.RoundRobin{})
				r.SpawnAll(func(p *sched.Proc) {
					for s := 0; s < 100; s++ {
						p.Step()
					}
				})
				r.Execute(int64(n*100 + 10))
			}
		})
	}
}
